"""Observer fault isolation: a crashing observer degrades telemetry,
never the search (the PR's regression test for hardened dispatch)."""

from __future__ import annotations

import logging

from repro.explore import Observer, explore
from repro.metrics import MetricsObserver
from repro.programs import paper
from repro.resilience import chaos


class Crashy(Observer):
    """Raises from ``on_config`` after *fuse* successful calls."""

    def __init__(self, fuse: int = 0):
        self.fuse = fuse
        self.calls = 0

    def on_config(self, graph, cid, config, fresh, status):
        self.calls += 1
        if self.calls > self.fuse:
            raise RuntimeError("observer bug")


class Recorder(Observer):
    def __init__(self):
        self.configs = 0
        self.edges = 0
        self.done = 0

    def on_config(self, graph, cid, config, fresh, status):
        if fresh:
            self.configs += 1

    def on_edge(self, graph, src, dst, actions):
        self.edges += 1

    def on_done(self, graph):
        self.done += 1


def test_crashing_observer_is_isolated(caplog):
    crashy, recorder = Crashy(), Recorder()
    with caplog.at_level(logging.WARNING, logger="repro.explore"):
        result = explore(
            paper.mutex_counter(), "stubborn", observers=(crashy, recorder)
        )
    s = result.stats
    assert not s.truncated  # the search itself is untouched
    assert s.degraded_observers == 1
    # the broken observer was dispatched once, then dropped
    assert crashy.calls == 1
    # its co-observer kept receiving every event, the initial
    # configuration's announcement included
    assert recorder.configs == s.num_configs
    assert recorder.edges == s.num_edges
    assert recorder.done == 1
    assert any("observer" in r.message for r in caplog.records)


def test_observer_dropped_mid_run():
    crashy, recorder = Crashy(fuse=5), Recorder()
    result = explore(
        paper.mutex_counter(), "full", observers=(crashy, recorder)
    )
    assert result.stats.degraded_observers == 1
    assert crashy.calls == 6  # 5 good calls + the one that raised
    assert recorder.configs == result.stats.num_configs


def test_observer_chaos_point_degrades_all(caplog):
    """The injected `observer` fault fires inside guarded dispatch —
    equivalent to every observer being broken at once."""
    mo = MetricsObserver()
    recorder = Recorder()
    with chaos.injected("observer", times=-1):
        result = explore(
            paper.mutex_counter(), "stubborn", observers=(mo, recorder)
        )
    s = result.stats
    assert not s.truncated
    assert s.degraded_observers == 2  # both observers evicted
    assert mo.registry.value("explore.observer_faults") == 2
    # the graph is still complete and correct
    clean = explore(paper.mutex_counter(), "stubborn")
    assert result.final_stores() == clean.final_stores()
    assert s.num_configs == clean.stats.num_configs


def test_results_identical_with_and_without_crashing_observer():
    with_crash = explore(
        paper.racy_counter(), "stubborn", observers=(Crashy(),)
    )
    without = explore(paper.racy_counter(), "stubborn")
    assert with_crash.final_stores() == without.final_stores()
    assert with_crash.stats.num_configs == without.stats.num_configs
    assert with_crash.stats.num_edges == without.stats.num_edges
