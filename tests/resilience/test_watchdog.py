"""The bench per-program watchdog: a hung program becomes an error
entry, never a hung sweep (the acceptance test for forced timeouts)."""

from __future__ import annotations

import time

import pytest

from repro.bench import WatchdogAlarm, _watchdog, format_summary, run_bench
from repro.lang import parse_program
from repro.programs.corpus import CORPUS

#: No budget will save this one: unbounded counter growth, and the
#: bench sweep passes no time limit through in these tests.
HANG_SRC = "var g = 0; func main() { while (true) { g = g + 1; } }"


def _hang_corpus():
    corpus = {"fig2_shasha_snir": CORPUS["fig2_shasha_snir"]}
    corpus["hangs_forever"] = lambda: parse_program(HANG_SRC)
    return corpus


def test_watchdog_context_fires():
    with pytest.raises(WatchdogAlarm, match="watchdog fired"):
        with _watchdog(0.05):
            while True:
                time.sleep(0.01)


def test_watchdog_context_noop_when_disabled():
    with _watchdog(None):
        pass


def test_watchdog_alarm_pierces_exception_guards():
    """The alarm must be a BaseException: the engine's resilience guards
    swallow Exception, and a watchdog they can swallow is no watchdog."""
    assert issubclass(WatchdogAlarm, BaseException)
    assert not issubclass(WatchdogAlarm, Exception)


def test_bench_survives_forced_timeout(capsys):
    """Acceptance: a sweep containing a program that must hang completes,
    with an error entry for the hung program and clean results for the
    rest."""
    report = run_bench(
        programs=["fig2_shasha_snir", "hangs_forever"],
        corpus=_hang_corpus(),
        max_configs=10_000_000,  # no config budget: the watchdog stops it
        time_limit_s=20.0,  # backstop only: if the alarm is ever lost the
        # run truncates on time and the assertions below fail fast,
        # instead of the whole suite hanging on an unbounded sweep
        watchdog_s=0.4,
    )
    doc = report.document
    assert doc["watchdog_s"] == 0.4
    assert list(doc["errors"]) == ["hangs_forever"]
    assert "WatchdogAlarm" in doc["errors"]["hangs_forever"]
    entry = doc["programs"]["hangs_forever"]
    assert entry["attempts"] == 2  # retried once before giving up
    assert "policies" not in entry
    # the healthy program is unaffected
    healthy = doc["programs"]["fig2_shasha_snir"]
    assert healthy["policies"]["full"]["configs"] > 0
    # errored programs are excluded from the soundness claim
    assert "errored" in doc["soundness"]

    summary = format_summary(report)
    assert "ERROR hangs_forever: WatchdogAlarm" in summary


def test_bench_without_watchdog_unchanged():
    report = run_bench(programs=["fig2_shasha_snir"])
    doc = report.document
    assert doc["watchdog_s"] is None
    assert doc["errors"] == {}
    assert "matched 'full'" in doc["soundness"]


def test_watchdog_generous_budget_no_false_positive():
    report = run_bench(programs=["fig2_shasha_snir"], watchdog_s=120.0)
    assert report.document["errors"] == {}
