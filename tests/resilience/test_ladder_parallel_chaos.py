"""Degradation ladder × parallel backend × killed workers.

The pool retries a killed worker *transparently*, inside one rung's
``explore`` call — so a kill must never show up in the escalation
trail.  These drills kill a worker while each ladder rung is the one
running and assert the trail (and the answer) is exactly what the
fault-free run produces, with the retry visible only in
``worker_restarts``.
"""

from __future__ import annotations

import pytest

from repro.explore import ExploreOptions, explore
from repro.programs.corpus import CORPUS
from repro.resilience import Budgets, explore_resilient, chaos


@pytest.fixture(autouse=True)
def no_leaked_injector():
    assert chaos.active() is None
    yield
    leaked = chaos.active() is not None
    chaos.uninstall()
    assert not leaked, "test left a chaos injector installed"


def _serial_baseline():
    return explore(
        CORPUS["philosophers_3"](),
        options=ExploreOptions(policy="full"),
    )


#: (start rung, kick offset) — the offset delays the kill so it lands
#: while the *target* rung's pool is doing real work.
RUNGS = ("full", "stubborn", "stubborn-proc+coarsen")


@pytest.mark.parametrize("start", RUNGS)
def test_worker_kill_during_each_rung_is_invisible(start):
    """Ample budgets: the start rung answers exactly, kill or no kill,
    and the trail stays empty — the pool retry never escalates."""
    program = CORPUS["philosophers_3"]()
    baseline = _serial_baseline()
    clean = explore_resilient(
        program, budgets=Budgets(), start=start, backend="parallel", jobs=2
    )
    with chaos.injected("worker", after=10, shared=True) as inj:
        drilled = explore_resilient(
            program, budgets=Budgets(), start=start, backend="parallel",
            jobs=2,
        )
    assert inj.armed_fired("worker") == 1  # the kill really happened
    assert drilled.exact and clean.exact
    assert drilled.rung == clean.rung == start
    # trail consistency: a transparently retried pool is not an
    # escalation
    assert drilled.escalations == clean.escalations == []
    assert drilled.result.stats.escalations == ()
    assert drilled.result.stats.worker_restarts == 1
    assert clean.result.stats.worker_restarts == 0
    # and the answer is still the exact state space
    assert drilled.result.final_stores() == baseline.final_stores()
    assert drilled.result.graph.configs == clean.result.graph.configs
    assert drilled.result.graph.edges == clean.result.graph.edges


def test_worker_kill_during_escalated_rung_keeps_trail_consistent():
    """Tight config budget forces full -> stubborn escalation; the kill
    is offset to land in the *escalated* rung's pool.  The trail must
    record exactly the budget escalation — nothing about the kill."""
    program = CORPUS["philosophers_3"]()
    budgets = Budgets(max_configs=40)  # full blows this, stubborn too
    clean = explore_resilient(
        program, budgets=budgets, backend="parallel", jobs=2
    )
    assert clean.escalations  # the budget genuinely escalates
    with chaos.injected("worker", after=60, shared=True) as inj:
        drilled = explore_resilient(
            program, budgets=budgets, backend="parallel", jobs=2
        )
    assert inj.armed_fired("worker") == 1
    assert drilled.rung == clean.rung
    assert drilled.exact == clean.exact
    assert [e.describe() for e in drilled.escalations] == [
        e.describe() for e in clean.escalations
    ]
    assert drilled.result.stats.escalations == clean.result.stats.escalations
    assert (
        drilled.result.final_stores() == clean.result.final_stores()
    )


def test_worker_hang_during_resilient_run_trips_watchdog_not_ladder():
    """A wedged worker is the pool watchdog's job, not the ladder's:
    same contract as a kill — restart transparently, trail unchanged."""
    program = CORPUS["philosophers_3"]()
    clean = explore_resilient(
        program, budgets=Budgets(), start="stubborn", backend="parallel",
        jobs=2,
    )
    with chaos.injected("worker-hang", shared=True):
        drilled = explore_resilient(
            program, budgets=Budgets(), start="stubborn", backend="parallel",
            jobs=2,
        )
    assert drilled.exact
    assert drilled.escalations == clean.escalations == []
    assert drilled.result.stats.worker_restarts == 1
    assert drilled.result.final_stores() == clean.result.final_stores()
