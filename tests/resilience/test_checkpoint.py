"""Snapshot format, validation, and the periodic Checkpointer."""

from __future__ import annotations

import pickle

import pytest

from repro.explore import ExploreOptions, explore
from repro.programs import paper
from repro.resilience import chaos
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    Checkpointer,
    program_fingerprint,
    read_snapshot,
    write_snapshot,
)


def test_round_trip(tmp_path):
    path = str(tmp_path / "snap.ckpt")
    write_snapshot(path, {"driver": "bfs", "fingerprint": "abc", "x": [1, 2]})
    payload = read_snapshot(path, driver="bfs", fingerprint="abc")
    assert payload["schema"] == CHECKPOINT_SCHEMA
    assert payload["x"] == [1, 2]
    assert not (tmp_path / "snap.ckpt.tmp").exists()  # atomic write


def test_missing_file(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        read_snapshot(str(tmp_path / "nope.ckpt"))


def test_garbage_file(tmp_path):
    p = tmp_path / "garbage.ckpt"
    p.write_bytes(b"not a pickle at all")
    with pytest.raises(CheckpointError, match="cannot read"):
        read_snapshot(str(p))


def test_non_checkpoint_pickle(tmp_path):
    p = tmp_path / "other.ckpt"
    p.write_bytes(pickle.dumps([1, 2, 3]))
    with pytest.raises(CheckpointError, match="not a repro checkpoint"):
        read_snapshot(str(p))


def test_wrong_schema(tmp_path):
    p = tmp_path / "old.ckpt"
    p.write_bytes(pickle.dumps({"schema": "repro.checkpoint/0"}))
    with pytest.raises(CheckpointError, match="unsupported"):
        read_snapshot(str(p))


def test_driver_mismatch(tmp_path):
    path = str(tmp_path / "snap.ckpt")
    write_snapshot(path, {"driver": "bfs"})
    with pytest.raises(CheckpointError, match="'bfs' driver"):
        read_snapshot(path, driver="sleep")


def test_fingerprint_mismatch(tmp_path):
    path = str(tmp_path / "snap.ckpt")
    write_snapshot(path, {"driver": "bfs", "fingerprint": "abc"})
    with pytest.raises(CheckpointError, match="different program"):
        read_snapshot(path, fingerprint="xyz")


def test_options_mismatch(tmp_path):
    path = str(tmp_path / "snap.ckpt")
    write_snapshot(path, {"options_key": ("full", False)})
    with pytest.raises(CheckpointError, match="do not match"):
        read_snapshot(path, options_key=("stubborn", True))


def test_fingerprint_tracks_program_identity():
    a = program_fingerprint(paper.mutex_counter())
    b = program_fingerprint(paper.mutex_counter())
    c = program_fingerprint(paper.racy_counter())
    assert a == b != c


def test_checkpointer_periodic_writes(tmp_path):
    path = str(tmp_path / "snap.ckpt")
    cp = Checkpointer(path, every=3)
    stops = [cp.tick(lambda: {"n": i}) for i in range(10)]
    assert cp.written == 3  # ticks 3, 6, 9
    assert not any(stops)  # no stop_after: never asks to stop
    assert read_snapshot(path)["n"] == 8  # 9th tick captured i=8


def test_checkpointer_stop_after(tmp_path):
    cp = Checkpointer(str(tmp_path / "snap.ckpt"), every=2, stop_after=2)
    stops = [cp.tick(lambda: {}) for _ in range(6)]
    # stops right after the 2nd successful write (tick 4), not before
    assert stops == [False, False, False, True, False, True]
    assert cp.written >= 2


def test_checkpointer_survives_write_faults(tmp_path):
    """A full disk (simulated) must not kill the run or stop it."""
    path = str(tmp_path / "snap.ckpt")
    cp = Checkpointer(path, every=1, stop_after=1)
    with chaos.injected("checkpoint", times=2):
        stops = [cp.tick(lambda: {"n": i}) for i in range(4)]
    assert cp.faults == 2
    assert cp.written == 2
    # a faulted write does not count toward stop_after
    assert stops == [False, False, True, True]


def test_checkpointer_survives_bad_path():
    cp = Checkpointer("/nonexistent-dir/snap.ckpt", every=1)
    assert cp.tick(lambda: {}) is False
    assert cp.faults == 1 and cp.written == 0


def test_explore_counts_checkpoint_faults(tmp_path):
    program = paper.mutex_counter()
    path = str(tmp_path / "snap.ckpt")
    cp = Checkpointer(path, every=1)
    with chaos.injected("checkpoint", times=2):
        result = explore(
            program,
            options=ExploreOptions(policy="stubborn"),
            checkpointer=cp,
        )
    s = result.stats
    assert not s.truncated  # checkpoint I/O failure never kills the run
    assert s.checkpoint_faults == 2
    assert s.checkpoints_written == cp.written > 0
