"""Snapshot format, validation, and the periodic Checkpointer."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.explore import ExploreOptions, explore
from repro.programs import paper
from repro.resilience import chaos
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    Checkpointer,
    program_fingerprint,
    read_snapshot,
    write_snapshot,
)


def test_round_trip(tmp_path):
    path = str(tmp_path / "snap.ckpt")
    write_snapshot(path, {"driver": "bfs", "fingerprint": "abc", "x": [1, 2]})
    payload = read_snapshot(path, driver="bfs", fingerprint="abc")
    assert payload["schema"] == CHECKPOINT_SCHEMA
    assert payload["x"] == [1, 2]
    assert not (tmp_path / "snap.ckpt.tmp").exists()  # atomic write


def test_missing_file(tmp_path):
    with pytest.raises(CheckpointError, match="cannot read"):
        read_snapshot(str(tmp_path / "nope.ckpt"))


def test_garbage_file(tmp_path):
    p = tmp_path / "garbage.ckpt"
    p.write_bytes(b"not a pickle at all")
    with pytest.raises(CheckpointError, match="cannot read"):
        read_snapshot(str(p))


def test_non_checkpoint_pickle(tmp_path):
    p = tmp_path / "other.ckpt"
    p.write_bytes(pickle.dumps([1, 2, 3]))
    with pytest.raises(CheckpointError, match="not a repro checkpoint"):
        read_snapshot(str(p))


def test_wrong_schema(tmp_path):
    p = tmp_path / "old.ckpt"
    p.write_bytes(pickle.dumps({"schema": "repro.checkpoint/0"}))
    with pytest.raises(CheckpointError, match="unsupported"):
        read_snapshot(str(p))


def test_driver_mismatch(tmp_path):
    path = str(tmp_path / "snap.ckpt")
    write_snapshot(path, {"driver": "bfs"})
    with pytest.raises(CheckpointError, match="'bfs' driver"):
        read_snapshot(path, driver="sleep")


def test_fingerprint_mismatch(tmp_path):
    path = str(tmp_path / "snap.ckpt")
    write_snapshot(path, {"driver": "bfs", "fingerprint": "abc"})
    with pytest.raises(CheckpointError, match="different program"):
        read_snapshot(path, fingerprint="xyz")


def test_options_mismatch(tmp_path):
    path = str(tmp_path / "snap.ckpt")
    write_snapshot(path, {"options_key": ("full", False)})
    with pytest.raises(CheckpointError, match="do not match"):
        read_snapshot(path, options_key=("stubborn", True))


def test_fingerprint_tracks_program_identity():
    a = program_fingerprint(paper.mutex_counter())
    b = program_fingerprint(paper.mutex_counter())
    c = program_fingerprint(paper.racy_counter())
    assert a == b != c


def test_checkpointer_periodic_writes(tmp_path):
    path = str(tmp_path / "snap.ckpt")
    cp = Checkpointer(path, every=3)
    stops = [cp.tick(lambda: {"n": i}) for i in range(10)]
    assert cp.written == 3  # ticks 3, 6, 9
    assert not any(stops)  # no stop_after: never asks to stop
    assert read_snapshot(path)["n"] == 8  # 9th tick captured i=8


def test_checkpointer_stop_after(tmp_path):
    cp = Checkpointer(str(tmp_path / "snap.ckpt"), every=2, stop_after=2)
    stops = [cp.tick(lambda: {}) for _ in range(6)]
    # stops right after the 2nd successful write (tick 4), not before
    assert stops == [False, False, False, True, False, True]
    assert cp.written >= 2


def test_checkpointer_survives_write_faults(tmp_path):
    """A full disk (simulated) must not kill the run or stop it."""
    path = str(tmp_path / "snap.ckpt")
    cp = Checkpointer(path, every=1, stop_after=1)
    with chaos.injected("checkpoint", times=2):
        stops = [cp.tick(lambda: {"n": i}) for i in range(4)]
    assert cp.faults == 2
    assert cp.written == 2
    # a faulted write does not count toward stop_after
    assert stops == [False, False, True, True]


def test_checkpointer_survives_bad_path():
    cp = Checkpointer("/nonexistent-dir/snap.ckpt", every=1)
    assert cp.tick(lambda: {}) is False
    assert cp.faults == 1 and cp.written == 0


def test_explore_counts_checkpoint_faults(tmp_path):
    program = paper.mutex_counter()
    path = str(tmp_path / "snap.ckpt")
    cp = Checkpointer(path, every=1)
    with chaos.injected("checkpoint", times=2):
        result = explore(
            program,
            options=ExploreOptions(policy="stubborn"),
            checkpointer=cp,
        )
    s = result.stats
    assert not s.truncated  # checkpoint I/O failure never kills the run
    assert s.checkpoint_faults == 2
    assert s.checkpoints_written == cp.written > 0


# --------------------------------------------------------------------------
# damaged snapshots and mid-write crashes (PR 7 hardening)
# --------------------------------------------------------------------------


def test_truncated_snapshot_is_typed_error_with_hint(tmp_path):
    """Regression: a torn download / killed writer leaves a prefix of a
    valid pickle.  Loading it must raise CheckpointError naming the
    file and the way out — never a raw unpickling traceback."""
    path = str(tmp_path / "snap.ckpt")
    write_snapshot(path, {"driver": "bfs", "payload": list(range(1000))})
    blob = open(path, "rb").read()
    for cut in (1, len(blob) // 2, len(blob) - 1):
        with open(path, "wb") as fh:
            fh.write(blob[:cut])
        with pytest.raises(CheckpointError) as err:
            read_snapshot(path)
        message = str(err.value)
        assert path in message
        assert "truncated or corrupt" in message
        assert "re-run without --resume" in message


def test_bitrotted_snapshot_is_typed_error(tmp_path):
    """Bit flips deep in the pickle stream surface as the same typed
    error, whatever exception the unpickler happens to raise."""
    path = str(tmp_path / "snap.ckpt")
    write_snapshot(path, {"driver": "bfs", "payload": {"k": [1, 2, 3]}})
    blob = bytearray(open(path, "rb").read())
    blob[len(blob) // 2] ^= 0xFF
    with open(path, "wb") as fh:
        fh.write(bytes(blob))
    try:
        payload = read_snapshot(path)
    except CheckpointError as exc:
        assert "truncated or corrupt" in str(exc)
    else:
        # one flipped byte can survive unpickling; it must then still
        # be a structurally valid snapshot dict, not garbage
        assert isinstance(payload, dict) and "schema" in payload


def test_truncated_resume_fails_typed_through_explore(tmp_path):
    """The same contract holds end to end through explore(--resume)."""
    program = paper.mutex_counter()
    path = str(tmp_path / "snap.ckpt")
    cp = Checkpointer(path, every=1, stop_after=1)
    explore(program, options=ExploreOptions(policy="stubborn"), checkpointer=cp)
    blob = open(path, "rb").read()
    with open(path, "wb") as fh:
        fh.write(blob[: len(blob) // 2])
    with pytest.raises(CheckpointError, match="re-run without --resume"):
        explore(
            program,
            options=ExploreOptions(policy="stubborn"),
            resume_from=path,
        )


def test_mid_write_crash_preserves_previous_snapshot(tmp_path):
    """Atomicity under a crash *during* the write: the ``store-io``
    point fails individual low-level ``write()`` calls inside the
    snapshot dump, exactly like a disk dying mid-file.  Whatever write
    the crash lands on, the previous snapshot stays loadable."""
    path = str(tmp_path / "snap.ckpt")
    write_snapshot(path, {"driver": "bfs", "n": 1, "pad": list(range(4096))})
    before = open(path, "rb").read()
    # sweep the crash point across the file: first write, a later
    # write, and (past the end) no crash at all
    for after in (0, 1, 2, 5):
        with chaos.injected("store-io", after=after, times=1):
            try:
                write_snapshot(
                    path, {"driver": "bfs", "n": 2, "pad": list(range(4096))}
                )
                crashed = False
            except chaos.ChaosFault:
                crashed = True
        if crashed:
            # the interrupted write left the old bytes untouched...
            assert open(path, "rb").read() == before
            payload = read_snapshot(path)
            assert payload["n"] == 1
            # ...and no temp debris
            assert os.listdir(str(tmp_path)) == ["snap.ckpt"]
        else:
            assert read_snapshot(path)["n"] == 2
            write_snapshot(
                path, {"driver": "bfs", "n": 1, "pad": list(range(4096))}
            )
            before = open(path, "rb").read()


def test_mid_write_crash_through_checkpointer(tmp_path):
    """The periodic Checkpointer absorbs a mid-write store-io crash as
    an ordinary checkpoint fault: run continues, old snapshot loads."""
    path = str(tmp_path / "snap.ckpt")
    cp = Checkpointer(path, every=1)
    assert cp.tick(lambda: {"driver": "bfs", "n": 1}) is False
    with chaos.injected("store-io", times=1):
        cp.tick(lambda: {"driver": "bfs", "n": 2, "pad": list(range(4096))})
    assert cp.faults == 1
    assert read_snapshot(path)["n"] == 1
