"""Shared fixtures for the resilience suite."""

from __future__ import annotations

import pytest

from repro.resilience import chaos


@pytest.fixture(autouse=True)
def no_leaked_injector():
    """A test that forgets to uninstall its injector must not poison the
    rest of the suite — and must fail itself."""
    assert chaos.active() is None
    yield
    leaked = chaos.active() is not None
    chaos.uninstall()
    assert not leaked, "test left a chaos injector installed"
