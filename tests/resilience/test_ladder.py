"""The degradation ladder: budgets, escalation order, and the final
abstract rung.

The headline acceptance test: a synthetic blowup program (unbounded
counter growth) completes under the ladder with an explicit escalation
trail in the result's stats *and* in the metrics registry.
"""

from __future__ import annotations

import pytest

from repro.explore import explore
from repro.lang import parse_program
from repro.metrics import MetricsObserver
from repro.programs import paper
from repro.programs.philosophers import philosophers
from repro.resilience import (
    DEFAULT_LADDER,
    Budgets,
    Escalation,
    explore_resilient,
)

#: Unbounded interleaved counter growth: every concrete rung must blow
#: any finite budget; only the abstract fold terminates.
BLOWUP_SRC = """
var g = 0; var h = 0;
func main() {
    cobegin
    { while (true) { g = g + 1; } }
    { while (true) { h = h + 1; } }
}
"""


def test_default_ladder_shape():
    names = [r.name for r in DEFAULT_LADDER]
    assert names == [
        "full", "stubborn", "stubborn-proc+coarsen", "abstract-fold",
    ]
    assert DEFAULT_LADDER[-1].policy == "fold"


def test_escalation_describe():
    e = Escalation("full", "stubborn", "configs")
    assert e.describe() == "full->stubborn: configs"


def test_small_program_answers_at_full():
    rr = explore_resilient(paper.mutex_counter())
    assert rr.exact and rr.rung == "full"
    assert rr.escalations == [] and rr.trail == ()
    assert rr.result.stats.escalations == ()
    assert not rr.result.stats.truncated
    assert rr.describe() == "rung=full (no escalation)"
    # the answer is the same one plain exploration gives
    assert rr.result.final_stores() == explore(
        paper.mutex_counter(), "full"
    ).final_stores()


def test_mid_ladder_answer_records_the_trail():
    """Pick a config budget between stubborn's and full's state counts:
    full blows it, stubborn completes — an *exact* answer from rung 2,
    with the escalation recorded."""
    program = philosophers(3)
    full_n = explore(program, "full").stats.num_configs
    stub_n = explore(program, "stubborn").stats.num_configs
    assert stub_n < full_n
    budget = (stub_n + full_n) // 2

    rr = explore_resilient(
        philosophers(3), budgets=Budgets(max_configs=budget)
    )
    assert rr.exact and rr.rung == "stubborn"
    assert rr.trail == ("full->stubborn: configs",)
    assert rr.result.stats.escalations == rr.trail
    assert not rr.result.stats.truncated
    assert rr.result.final_stores() == explore(
        philosophers(3), "full"
    ).final_stores()


def test_blowup_falls_through_to_abstract_fold():
    """Acceptance: the synthetic blowup completes under the ladder with
    the full escalation trail in stats and metrics."""
    program = parse_program(BLOWUP_SRC)
    mo = MetricsObserver()
    rr = explore_resilient(
        program, budgets=Budgets(max_configs=60), observers=(mo,)
    )
    assert not rr.exact
    assert rr.rung == "abstract-fold"
    assert rr.trail == (
        "full->stubborn: configs",
        "stubborn->stubborn-proc+coarsen: configs",
        "stubborn-proc+coarsen->abstract-fold: configs",
    )
    # the deepest concrete attempt is returned, truthfully truncated
    assert rr.result.stats.truncated
    assert rr.result.stats.truncation_reason == "configs"
    assert rr.result.stats.escalations == rr.trail
    # the abstract rung terminated on the infinite-state program
    assert rr.fold is not None
    assert len(rr.fold.table) > 0
    # ... and the registry saw every hop
    assert mo.registry.value("resilience.escalations") == 3
    assert mo.registry.value("resilience.final_rung") == 3


def test_time_budget_reason():
    program = parse_program(BLOWUP_SRC)
    rr = explore_resilient(
        program, budgets=Budgets(time_limit_s=0.0, max_configs=10**9)
    )
    assert not rr.exact
    assert all("time" in t for t in rr.trail)


def test_memory_budget_reason():
    program = parse_program(BLOWUP_SRC)
    rr = explore_resilient(
        program, budgets=Budgets(max_rss_bytes=1, max_configs=10**9)
    )
    assert not rr.exact
    assert all("memory" in t for t in rr.trail)
    assert rr.result.stats.peak_rss_bytes > 1


def test_start_skips_expensive_rungs():
    rr = explore_resilient(paper.mutex_counter(), start="stubborn")
    assert rr.exact and rr.rung == "stubborn"
    assert rr.trail == ()


def test_unknown_start_rung_rejected():
    with pytest.raises(ValueError, match="unknown ladder rung"):
        explore_resilient(paper.mutex_counter(), start="quantum")


def test_ladder_without_fold_returns_deepest_attempt():
    """A ladder of concrete rungs only: when all blow the budget, the
    caller still gets the deepest truncated result, marked inexact."""
    program = parse_program(BLOWUP_SRC)
    rr = explore_resilient(
        program,
        budgets=Budgets(max_configs=40),
        ladder=DEFAULT_LADDER[:2],  # full, stubborn — no fold
    )
    assert not rr.exact
    assert rr.fold is None
    assert rr.rung == "stubborn"
    assert rr.trail == ("full->stubborn: configs",)
    assert rr.result.stats.truncated
