"""Integration tests: every experiment's headline claim (E1-E12).

These assert the *shapes* that EXPERIMENTS.md reports; the benchmark
harness regenerates the full tables.
"""

from repro.explore import ExploreOptions, explore
from repro.lang import parse_program
from repro.programs import paper
from repro.programs.philosophers import philosophers
from repro.programs.synthetic import identical_tasks, sharing_sweep
from repro.semantics import StepOptions


# -- E1: Figure 2 / Example 1 -------------------------------------------------


def test_e1_sc_admits_exactly_three_outcomes(fig2):
    r = explore(fig2, "full")
    assert sorted(r.global_values("x", "y")) == [(0, 1), (1, 0), (1, 1)]


def test_e1_reordering_adds_illegal_outcome():
    r = explore(paper.fig2_reordered(), "full")
    outcomes = r.global_values("x", "y")
    assert (0, 0) in outcomes  # the SC-illegal outcome appears
    assert len(outcomes) == 4


# -- E2: Figure 5 --------------------------------------------------------------


def test_e2_reduction_preserves_results_and_shrinks(fig5):
    full = explore(fig5, "full")
    reduced = explore(fig5, "stubborn", coarsen=True)
    assert reduced.final_stores() == full.final_stores()
    assert reduced.stats.num_configs <= 13  # the paper's Figure 5(b) scale
    assert full.stats.num_configs >= 3 * reduced.stats.num_configs


# -- E3: dining philosophers -----------------------------------------------------


def test_e3_philosophers_reduced_and_sound():
    p3 = philosophers(3)
    full = explore(p3, "full")
    red = explore(p3, "stubborn", sleep=True)
    assert red.final_stores() == full.final_stores()
    assert red.stats.num_configs < full.stats.num_configs / 2
    assert red.stats.num_deadlocks == 1


# -- E4: virtual coarsening -------------------------------------------------------


def test_e4_coarsening_shrinks_local_heavy():
    from repro.programs.synthetic import local_heavy

    prog = local_heavy(2, 5)
    full = explore(prog, "full")
    co = explore(prog, "full", coarsen=True)
    assert co.final_stores() == full.final_stores()
    assert co.stats.num_configs < full.stats.num_configs / 2


# -- E5: Taylor folding (Figure 3) -------------------------------------------------


def test_e5_folding_merges_data_variants():
    from repro.abstraction import concurrency_states, taylor_explore

    prog = paper.fig3_folding()
    concrete = explore(prog, "full")
    quotient = concurrency_states(concrete.graph)
    assert len(quotient) < concrete.stats.num_configs
    folded = taylor_explore(prog)
    assert folded.stats.num_states == len(quotient)


# -- E6: clans ------------------------------------------------------------------


def test_e6_clan_space_independent_of_task_count():
    from repro.abstraction import clan_explore

    sizes = [clan_explore(identical_tasks(n, steps=1)).stats.num_states
             for n in (2, 4)]
    assert sizes[0] == sizes[1]


# -- E7/E8: Example 8 --------------------------------------------------------------


def test_e7_example8_dependences(example8, analysis_result):
    from repro.analyses.dependence import dependences

    deps = dependences(example8, analysis_result(example8))
    flows = {(d.src, d.dst, d.loc) for d in deps.deps if d.kind == "flow"}
    assert ("s2", "s4", ("site", "s1")) in flows  # through heap object b1


def test_e8_example8_placement(example8, analysis_result):
    from repro.analyses.lifetime import lifetimes
    from repro.analyses.memplace import placements

    place = placements(lifetimes(example8, analysis_result(example8)))
    assert not place["s1"].thread_local  # b1: shared level
    assert place["s3"].thread_local  # b2: local


# -- E9: Example 15 -----------------------------------------------------------------


def test_e9_example15_pairs_and_schedule(example15):
    from repro.analyses.parallelize import further_parallelize

    sched = further_parallelize(example15, explore(example15, "full"))
    assert sched.dependent_pairs == {
        frozenset(("s1", "s4")),
        frozenset(("s2", "s3")),
    }
    assert sched.width == 2


# -- E10: busy-wait constants --------------------------------------------------------


def test_e10_interference_aware_constants():
    from repro.analyses.constprop import constants_at, licm_report

    prog = paper.intro_busywait_loop()
    cp = constants_at(prog)
    assert cp.constant("l1", "s") is None  # flag is NOT loop-invariant
    assert cp.constant("r1", "x") == 42  # but x is known after the wait
    licm = [l for l in licm_report(prog) if l.seq_invariant]
    assert licm and licm[0].unsafe == ("s",)


# -- E11: sharing sweep -----------------------------------------------------------------


def test_e11_reduction_grows_with_locality():
    dense = sharing_sweep(2, 4, 1, distinct_shared=False)
    sparse = sharing_sweep(2, 4, 4)
    ratios = []
    for prog in (dense, sparse):
        full = explore(prog, "full")
        red = explore(prog, "stubborn", coarsen=True)
        assert red.final_stores() == full.final_stores()
        ratios.append(full.stats.num_configs / red.stats.num_configs)
    assert ratios[1] > ratios[0]  # sparser sharing → bigger reduction


# -- E12: abstract soundness ---------------------------------------------------------------


def test_e12_abstract_terminates_where_concrete_cannot():
    from repro.absdomain import AbsValueDomain, IntervalDomain
    from repro.abstraction import taylor_explore

    prog = parse_program(
        "var g = 0; func main() { while (true) { g = g + 1; } }"
    )
    concrete = explore(prog, options=ExploreOptions(policy="full", max_configs=100))
    assert concrete.stats.truncated  # concrete space is infinite
    folded = taylor_explore(prog, AbsValueDomain(IntervalDomain()))
    assert folded.stats.num_states < 20
    for cfg in concrete.graph.configs:
        if cfg.fault is None:
            assert folded.covers_config(cfg)
