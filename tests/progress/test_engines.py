"""Every backend feeds the telemetry plane: parallel master, the
resilience ladder, and schedule enumeration."""

from __future__ import annotations

from repro.bench import result_digest
from repro.explore import ExploreOptions, explore
from repro.programs.corpus import CORPUS
from repro.progress import ProgressEmitter


def test_parallel_backend_emits_shard_frames():
    program = CORPUS["philosophers_3"]()
    opts = ExploreOptions(
        policy="stubborn", coarsen=True, backend="parallel", jobs=2
    )
    # a zero interval makes every drive-loop tick due — the parallel
    # cadence is wall-clock (master-side), not count-based
    em = ProgressEmitter(interval_s=0.0)
    result = explore(program, options=opts, observers=(em,))
    parallel = [f for f in em.frames if f["phase"] == "parallel"]
    assert parallel, "the drive loop never emitted"
    frame = parallel[-1]
    assert len(frame["shard_depths"]) == 2
    assert len(frame["shard_steals"]) == 2
    assert frame["configs"] >= 0 and "outstanding" in frame
    done = em.frames[-1]
    assert done["phase"] == "done"
    assert done["configs"] == result.stats.num_configs


def test_parallel_emitter_does_not_change_the_result():
    program = CORPUS["philosophers_3"]()
    opts = ExploreOptions(
        policy="stubborn", coarsen=True, backend="parallel", jobs=2
    )
    bare = explore(program, options=opts)
    em = ProgressEmitter(interval_s=0.0)
    watched = explore(program, options=opts, observers=(em,))
    assert result_digest(bare) == result_digest(watched)
    assert bare.stats.num_configs == watched.stats.num_configs


def test_ladder_emits_rung_frames_and_context():
    from repro.resilience import explore_resilient

    em = ProgressEmitter(every=10)
    rr = explore_resilient(CORPUS["mutex_counter"](), observers=(em,))
    assert rr.exact
    ladder = [f for f in em.frames if f["phase"] == "ladder"]
    assert ladder and ladder[0]["event"] == "rung-start"
    assert ladder[0]["rung"] == rr.rung
    # the rung context sticks to the engine's own frames too
    done = [f for f in em.frames if f["phase"] == "done"]
    assert done and done[-1]["rung"] == rr.rung


def test_ladder_escalation_frames_name_the_rungs():
    from repro.resilience import Budgets, explore_resilient

    em = ProgressEmitter(every=50)
    rr = explore_resilient(
        CORPUS["philosophers_3"](),
        budgets=Budgets(max_configs=60),
        observers=(em,),
    )
    escalations = [
        f for f in em.frames
        if f["phase"] == "ladder" and f["event"] == "escalation"
    ]
    assert escalations, "budget exhaustion never surfaced as a frame"
    assert escalations[0]["src"] and escalations[0]["dst"]
    starts = [
        f["rung"] for f in em.frames
        if f["phase"] == "ladder" and f["event"] == "rung-start"
    ]
    assert rr.rung in starts


def test_schedules_enumeration_emits_path_frames():
    from repro.schedules import generate

    program = CORPUS["philosophers_3"]()
    result = explore(
        program, options=ExploreOptions(policy="stubborn", coarsen=True)
    )
    em = ProgressEmitter(every=2)
    sset = generate(result, progress=em)
    frames = [f for f in em.frames if f["phase"] == "schedules"]
    assert frames
    assert frames[-1]["paths"] <= sset.num_paths
    assert frames[-1]["classes"] <= sset.num_classes
    # progress attachment must not perturb generation
    assert generate(result).num_classes == sset.num_classes
