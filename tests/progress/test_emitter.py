"""The ProgressEmitter itself: cadence, context, sink isolation."""

from __future__ import annotations

import pytest

from repro.progress import (
    SCHEMA_VERSION,
    NdjsonSink,
    ProgressEmitter,
    read_frames,
)


class ListSink:
    def __init__(self):
        self.frames = []
        self.closed = False

    def emit(self, frame):
        self.frames.append(frame)

    def close(self):
        self.closed = True


class RaisingSink:
    def emit(self, frame):
        raise RuntimeError("sink exploded")


# --------------------------------------------------------------------------
# cadence
# --------------------------------------------------------------------------


def test_count_cadence_is_deterministic():
    em = ProgressEmitter(every=3)
    owed = [em.due() for _ in range(9)]
    assert owed == [False, False, True] * 3


def test_wall_cadence_uses_the_injected_clock():
    t = [0.0]
    em = ProgressEmitter(interval_s=1.0, clock=lambda: t[0])
    assert not em.due()
    t[0] = 0.5
    assert not em.due()
    t[0] = 1.0
    assert em.due()
    assert not em.due()  # re-armed for one interval later
    t[0] = 2.3
    assert em.due()


def test_emit_bypasses_cadence():
    em = ProgressEmitter(every=1000)
    frame = em.emit("done", configs=4)
    assert frame["phase"] == "done" and frame["configs"] == 4


# --------------------------------------------------------------------------
# frames
# --------------------------------------------------------------------------


def test_frame_shape_and_seq():
    em = ProgressEmitter(record_wall=False)
    f0 = em.emit("explore", configs=1)
    f1 = em.emit("explore", configs=2)
    assert f0["schema"] == SCHEMA_VERSION
    assert f0["kind"] == "progress"
    assert (f0["seq"], f1["seq"]) == (0, 1)
    assert "wall_ms" not in f0 and "wall_rss_bytes" not in f0


def test_wall_fields_are_wall_prefixed():
    from repro.trace.tracer import strip_wall

    em = ProgressEmitter()
    frame = em.emit("explore", configs=1)
    assert frame["wall_ms"] >= 0
    assert frame["wall_rss_bytes"] > 0
    stripped = strip_wall(frame)
    assert "wall_ms" not in stripped and "wall_rss_bytes" not in stripped
    assert stripped["configs"] == 1


def test_set_context_sticks_and_none_removes():
    em = ProgressEmitter(record_wall=False)
    em.set_context(rung="stubborn", key="abc")
    frame = em.emit("ladder")
    assert frame["rung"] == "stubborn" and frame["key"] == "abc"
    em.set_context(rung=None)
    frame = em.emit("ladder")
    assert "rung" not in frame and frame["key"] == "abc"


def test_explicit_fields_override_context():
    em = ProgressEmitter(record_wall=False)
    em.set_context(rung="old")
    assert em.emit("ladder", rung="new")["rung"] == "new"


def test_frames_deque_is_bounded():
    em = ProgressEmitter(record_wall=False, keep=4)
    for i in range(10):
        em.emit("explore", configs=i)
    assert len(em.frames) == 4
    assert em.frames[-1]["configs"] == 9


# --------------------------------------------------------------------------
# sinks
# --------------------------------------------------------------------------


def test_raising_sink_is_disabled_not_fatal():
    good = ListSink()
    em = ProgressEmitter(RaisingSink(), good)
    em.emit("explore", configs=1)
    em.emit("explore", configs=2)
    assert em.sink_failures == 1
    assert len(em.sinks) == 1
    assert [f["configs"] for f in good.frames] == [1, 2]


def test_close_reaches_sinks_and_tolerates_missing_close():
    class NoClose:
        def emit(self, frame):
            pass

    good = ListSink()
    em = ProgressEmitter(good, NoClose())
    em.close()
    assert good.closed


def test_ndjson_roundtrip(tmp_path):
    path = str(tmp_path / "frames.ndjson")
    sink = NdjsonSink(path)
    em = ProgressEmitter(sink, record_wall=False)
    em.emit("explore", configs=3)
    em.emit("done", configs=5)
    em.close()
    frames = read_frames(path)
    assert [f["phase"] for f in frames] == ["explore", "done"]
    assert frames[1]["configs"] == 5


def test_read_frames_skips_partial_tail(tmp_path):
    path = tmp_path / "frames.ndjson"
    path.write_text('{"phase": "explore", "seq": 0}\n{"phase": "trunc')
    frames = read_frames(str(path))
    assert len(frames) == 1 and frames[0]["seq"] == 0


def test_read_frames_missing_file_is_empty():
    assert read_frames("/nonexistent/frames.ndjson") == []


def test_observer_callbacks_are_noops():
    em = ProgressEmitter()
    em.on_config(None, 0, None, True, None)
    em.on_edge(None, 0, 1, [])
    em.on_done(None)
    assert em.seq == 0


@pytest.mark.parametrize("every", [1, 7])
def test_count_cadence_period(every):
    em = ProgressEmitter(every=every)
    fires = sum(em.due() for _ in range(every * 5))
    assert fires == 5
