"""Progress frames must never violate the determinism contract.

Two bars, mirroring the trace plane's (tests/trace/test_determinism.py):

1. attaching an emitter must not change any result — digests and trace
   streams are byte-identical with and without one;
2. under a count-based cadence (``every=N``) the wall-stripped frame
   stream itself is byte-stable run to run, including truncated and
   chaos-interrupted runs.
"""

from __future__ import annotations

from repro.bench import result_digest
from repro.explore import ExploreOptions, explore
from repro.programs.corpus import CORPUS
from repro.progress import ProgressEmitter
from repro.resilience import chaos
from repro.trace.tracer import encode_record, strip_wall

OPTS = ExploreOptions(policy="stubborn", coarsen=True)


def _frame_stream(program, opts=OPTS, every=20, observers=()):
    em = ProgressEmitter(every=every)
    explore(program, options=opts, observers=(em, *observers))
    return [encode_record(strip_wall(f)) for f in em.frames]


def test_emitter_does_not_change_the_result():
    program = CORPUS["philosophers_3"]()
    bare = explore(program, options=OPTS)
    em = ProgressEmitter(every=10)
    watched = explore(program, options=OPTS, observers=(em,))
    assert result_digest(bare) == result_digest(watched)
    assert bare.stats.num_configs == watched.stats.num_configs
    assert em.seq >= 2  # periodic frames plus the final done frame


def test_emitter_does_not_change_the_trace_stream():
    from repro.trace import ListSink, TraceRecorder, Tracer

    program = CORPUS["mutex_counter"]()

    def traced(observers):
        sink = ListSink()
        recorder = TraceRecorder(Tracer(sink))
        explore(program, options=OPTS, observers=(recorder, *observers))
        return [encode_record(strip_wall(r)) for r in sink.records()]

    assert traced(()) == traced((ProgressEmitter(every=5),))


def test_stripped_frames_are_byte_stable():
    program = CORPUS["philosophers_3"]()
    assert _frame_stream(program) == _frame_stream(program)


def test_sleep_driver_frames_are_byte_stable():
    program = CORPUS["philosophers_3"]()
    opts = ExploreOptions(policy="stubborn", coarsen=True, sleep=True)
    a = _frame_stream(program, opts=opts, every=10)
    b = _frame_stream(program, opts=opts, every=10)
    assert a == b and len(a) >= 2


def test_budget_truncated_run_frames_are_byte_stable():
    program = CORPUS["philosophers_3"]()
    opts = ExploreOptions(policy="stubborn", coarsen=True, max_configs=40)
    a = _frame_stream(program, opts=opts, every=5)
    b = _frame_stream(program, opts=opts, every=5)
    assert a == b
    import json

    done = json.loads(a[-1])
    assert done["phase"] == "done" and done["truncated"]
    assert done["reason"] == "configs"


def test_chaos_interrupted_run_frames_are_byte_stable():
    program = CORPUS["mutex_counter"]()

    def stream():
        with chaos.injected("eval", after=10, times=2):
            return _frame_stream(program, every=5)

    assert stream() == stream()


def test_done_frame_matches_the_result_stats():
    import json

    program = CORPUS["mutex_counter"]()
    em = ProgressEmitter(every=1000)
    result = explore(program, options=OPTS, observers=(em,))
    done = json.loads(encode_record(em.frames[-1]))
    assert done["phase"] == "done"
    assert done["configs"] == result.stats.num_configs
    assert done["edges"] == result.stats.num_edges
    assert done["deadlocks"] == result.stats.num_deadlocks
