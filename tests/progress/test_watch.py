"""The watch renderers: pure frames/stats → screen strings."""

from __future__ import annotations

from repro.progress import (
    render_file_dashboard,
    render_frame,
    render_stats_dashboard,
)


def test_render_frame_compact_line():
    line = render_frame({
        "phase": "explore", "configs": 120, "edges": 300, "frontier": 17,
        "cache_hits": 30, "cache_misses": 10,
        "wall_ms": 1500.0, "wall_rss_bytes": 50 * 2**20,
    })
    assert line.startswith("[explore]")
    assert "configs=120" in line and "frontier=17" in line
    assert "75% hit" in line
    assert "t=1.5s" in line and "rss=50.0 MiB" in line


def test_render_frame_parallel_fields():
    line = render_frame({
        "phase": "parallel", "configs": 10,
        "shard_depths": [3, 0, 5], "shard_steals": [1, 2, 0],
    })
    assert "shards=3/0/5" in line and "steals=3" in line


def test_file_dashboard_empty():
    screen = render_file_dashboard([], source="p.ndjson")
    assert "p.ndjson" in screen and "no frames yet" in screen


def test_file_dashboard_complete_run():
    frames = [
        {"phase": "explore", "seq": 0, "configs": 10, "frontier": 4},
        {"phase": "done", "seq": 1, "configs": 79, "edges": 88,
         "wall_ms": 250.0, "wall_rss_bytes": 1 << 20},
    ]
    screen = render_file_dashboard(frames, source="x")
    assert "[complete]" in screen
    assert "configs 79" in screen and "edges 88" in screen
    assert "frames 2" in screen and "last seq 1" in screen


def test_file_dashboard_shards_and_rung():
    frames = [{
        "phase": "parallel", "seq": 3, "rung": "stubborn+coarsen",
        "shard_depths": [2, 7], "shard_steals": [0, 4],
    }]
    screen = render_file_dashboard(frames)
    assert "rung stubborn+coarsen" in screen
    assert "w0:2" in screen and "w1:7(+4 stolen)" in screen


def test_stats_dashboard_idle_server():
    stats = {
        "ok": True, "in_flight": 0,
        "counters": {"serve.jobs_completed": 5, "serve.jobs_failed": 0,
                     "serve.worker_restarts": 1, "serve.coalesced": 2},
        "store": {"serve.store_hits": 3, "serve.store_misses": 4,
                  "serve.store_evictions": 1},
        "jobs": {},
    }
    screen = render_stats_dashboard(stats, source="/tmp/s.sock")
    assert "completed 5" in screen and "restarts 1" in screen
    assert "store hits 3" in screen and "evictions 1" in screen
    assert "no jobs in flight" in screen


def test_stats_dashboard_job_table():
    stats = {
        "ok": True, "in_flight": 1, "counters": {}, "store": {},
        "jobs": {
            "abcdef0123456789": {
                "waiters": 1, "followers": 2,
                "last": {"phase": "explore", "kind": "progress",
                         "configs": 42, "wall_ms": 2000.0},
            },
        },
    }
    screen = render_stats_dashboard(stats)
    assert "KEY" in screen and "PHASE" in screen
    assert "abcdef012345.." in screen  # long keys truncate
    assert "configs=42" in screen and "followers=2" in screen
