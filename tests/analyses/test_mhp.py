"""May-happen-in-parallel tests."""

from repro.analyses.mhp import mhp_dynamic, mhp_static
from repro.explore import explore
from repro.lang import parse_program


def test_dynamic_mhp_siblings(fig2):
    pairs = mhp_dynamic(fig2, explore(fig2, "full"))
    assert frozenset(("s1", "s3")) in pairs
    assert frozenset(("s2", "s4")) in pairs


def test_dynamic_mhp_excludes_sequential():
    prog = parse_program("var g = 0; func main() { s1: g = 1; s2: g = 2; }")
    pairs = mhp_dynamic(prog, explore(prog, "full"))
    assert pairs == set()


def test_static_mhp_superset_of_dynamic(fig2):
    dyn = mhp_dynamic(fig2, explore(fig2, "full"))
    stat = mhp_static(fig2)
    assert dyn <= stat


def test_static_mhp_interprocedural():
    prog = parse_program(
        """
        var g = 0;
        func f() { u1: g = 1; }
        func main() { cobegin { s1: f(); } { s2: g = 2; } }
        """
    )
    pairs = mhp_static(prog)
    assert frozenset(("u1", "s2")) in pairs


def test_static_mhp_sequential_cobegins_disjoint():
    prog = parse_program(
        """
        var g = 0;
        func main() {
            cobegin { a1: g = 1; } { a2: g = 2; }
            cobegin { b1: g = 3; } { b2: g = 4; }
        }
        """
    )
    pairs = mhp_static(prog)
    assert frozenset(("a1", "b1")) not in pairs
    assert frozenset(("a1", "a2")) in pairs


def test_sync_ordering_removes_dynamic_mhp():
    prog = parse_program(
        """
        var f = 0; var x = 0;
        func main() {
            cobegin { a: x = 1; b: f = 1; } { c: assume(f == 1); d: x = 2; }
        }
        """
    )
    dyn = mhp_dynamic(prog, explore(prog, "full"))
    # a and d can never be poised together: d needs f==1 which a precedes
    assert frozenset(("a", "d")) not in dyn
    # but the static approximation keeps them
    assert frozenset(("a", "d")) in mhp_static(prog)
