"""Points-to analysis tests."""

from repro.analyses.pointsto import GOBJ, points_to
from repro.lang import parse_program
from repro.lang.instructions import RGlobal, RLocal


def test_malloc_flows_to_global():
    prog = parse_program("var p = 0; func main() { m1: p = malloc(1); }")
    pts = points_to(prog)
    assert pts.node(("g", 0)) == {("site", "m1")}


def test_copy_propagates():
    prog = parse_program(
        "var p = 0; var q = 0; func main() { m1: p = malloc(1); q = p; }"
    )
    pts = points_to(prog)
    assert ("site", "m1") in pts.node(("g", 1))


def test_store_and_load_through_heap():
    prog = parse_program(
        """
        var p = 0; var q = 0; var r = 0;
        func main() {
            m1: p = malloc(1);
            m2: q = malloc(1);
            *p = q;
            r = *p;
        }
        """
    )
    pts = points_to(prog)
    assert ("site", "m2") in pts.node(("cell", "m1"))
    assert ("site", "m2") in pts.node(("g", 2))


def test_addrof_global():
    prog = parse_program("var g = 0; var p = 0; func main() { p = &g; }")
    pts = points_to(prog)
    assert GOBJ in pts.node(("g", 1))


def test_call_argument_flow():
    prog = parse_program(
        """
        var p = 0;
        func keep(x) { p = x; }
        func main() { var q = 0; m1: q = malloc(1); keep(q); }
        """
    )
    pts = points_to(prog)
    assert ("site", "m1") in pts.node(("g", 0))
    assert ("site", "m1") in pts.node(("l", "keep", 0))


def test_return_value_flow():
    prog = parse_program(
        """
        var p = 0;
        func mk() { var t = 0; m1: t = malloc(1); return t; }
        func main() { p = mk(); }
        """
    )
    pts = points_to(prog)
    assert ("site", "m1") in pts.node(("ret", "mk"))
    assert ("site", "m1") in pts.node(("g", 0))


def test_function_values_tracked():
    prog = parse_program(
        """
        var r = 0;
        func inc(v) { return v + 1; }
        func main() { var f = 0; f = inc; r = f(1); }
        """
    )
    pts = points_to(prog)
    assert ("func", "inc") in pts.node(("l", "main", 0))


def test_indirect_callees_resolved():
    prog = parse_program(
        """
        var r = 0;
        func a(v) { return v; }
        func b(v) { return v; }
        func main() { var f = 0; if (r) { f = a; } else { f = b; } r = f(1); }
        """
    )
    pts = points_to(prog)
    callee = RLocal(slot=0, name="f")
    assert pts.callees("main", callee) == {"a", "b"}


def test_deref_sites_query():
    prog = parse_program(
        "var p = 0; func main() { m1: p = malloc(1); *p = 1; }"
    )
    pts = points_to(prog)
    sites, gobj = pts.deref_sites("main", RGlobal(index=0, name="p"))
    assert sites == {"m1"} and not gobj


def test_flow_insensitivity_conservative():
    # p first points to m1, later to m2 — both retained
    prog = parse_program(
        "var p = 0; func main() { m1: p = malloc(1); m2: p = malloc(1); }"
    )
    pts = points_to(prog)
    assert pts.node(("g", 0)) == {("site", "m1"), ("site", "m2")}


def test_no_spurious_targets():
    prog = parse_program(
        "var p = 0; var q = 0; func main() { m1: p = malloc(1); m2: q = malloc(1); }"
    )
    pts = points_to(prog)
    assert pts.node(("g", 0)) == {("site", "m1")}
    assert pts.node(("g", 1)) == {("site", "m2")}


def test_pointer_through_arith():
    prog = parse_program(
        "var p = 0; var q = 0; func main() { m1: p = malloc(2); q = p + 1; }"
    )
    pts = points_to(prog)
    assert ("site", "m1") in pts.node(("g", 1))
