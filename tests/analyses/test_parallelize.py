"""Further-parallelization tests (Example 15 / Figure 8)."""

from repro.analyses.parallelize import further_parallelize
from repro.explore import explore
from repro.lang import parse_program


def test_example15_dependent_pairs(example15):
    sched = further_parallelize(example15, explore(example15, "full"))
    assert sched.dependent_pairs == {
        frozenset(("s1", "s4")),
        frozenset(("s2", "s3")),
    }


def test_example15_schedule_valid(example15):
    sched = further_parallelize(example15, explore(example15, "full"))
    order = {l: i for i, layer in enumerate(sched.layers) for l in layer}
    # dependent pairs never share a layer
    for pair in sched.dependent_pairs:
        a, b = sorted(pair)
        assert order[a] != order[b]
    # every call scheduled exactly once
    assert sorted(order) == ["s1", "s2", "s3", "s4"]


def test_example15_width_two(example15):
    sched = further_parallelize(example15, explore(example15, "full"))
    assert sched.width == 2
    assert len(sched.layers) == 2


def test_fully_independent_calls_one_layer():
    prog = parse_program(
        """
        var a = 0; var b = 0; var c = 0; var d = 0;
        func f1() { a = 1; } func f2() { b = 1; }
        func f3() { c = 1; } func f4() { d = 1; }
        func main() { cobegin { s1: f1(); s2: f2(); } { s3: f3(); s4: f4(); } }
        """
    )
    sched = further_parallelize(prog, explore(prog, "full"))
    assert sched.dependent_pairs == set()
    assert len(sched.layers) == 1 and sched.width == 4


def test_fully_dependent_calls_sequentialized():
    prog = parse_program(
        """
        var g = 0;
        func bump() { g = g + 1; }
        func main() { cobegin { s1: bump(); s2: bump(); } { s3: bump(); } }
        """
    )
    sched = further_parallelize(prog, explore(prog, "full"))
    assert sched.width == 1
    assert len(sched.layers) == 3


def test_describe_output(example15):
    sched = further_parallelize(example15, explore(example15, "full"))
    text = sched.describe()
    assert "s1" in text and "||" in text
