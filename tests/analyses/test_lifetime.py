"""Object-lifetime analysis tests (§5.3)."""

from repro.analyses.lifetime import concurrent_pids, lifetimes
from repro.lang import parse_program


def lts_of(src, analysis_result):
    prog = parse_program(src)
    return prog, lifetimes(prog, analysis_result(prog))


def test_concurrent_pids_predicate():
    assert concurrent_pids((0, 0), (0, 1))
    assert not concurrent_pids((0,), (0, 1))  # ancestor
    assert not concurrent_pids((0, 1), (0, 1))
    assert concurrent_pids((0, 0, 1), (0, 1))


def test_object_local_to_function(analysis_result):
    prog, lts = lts_of(
        """
        var out = 0;
        func work() { var p = 0; m1: p = malloc(1); *p = 3; out = *p; }
        func main() { work(); }
        """,
        analysis_result,
    )
    lt = lts.objects[("m1", 0)]
    assert not lt.escapes_creator
    assert not lt.multi_thread
    assert lt.stack_allocatable
    assert lt.birth_func == "work"
    assert lts.dealloc_lists() == {"work": ["m1"]}


def test_object_escaping_via_return(analysis_result):
    prog, lts = lts_of(
        """
        var out = 0;
        func mk() { var p = 0; m1: p = malloc(1); *p = 5; return p; }
        func main() { var q = 0; q = mk(); out = *q; }
        """,
        analysis_result,
    )
    lt = lts.objects[("m1", 0)]
    assert lt.escapes_creator
    assert not lt.multi_thread
    assert "mk" not in lts.dealloc_lists()


def test_object_escaping_to_global(analysis_result):
    prog, lts = lts_of(
        """
        var g = 0; var out = 0;
        func put() { m1: g = malloc(1); }
        func main() { put(); *g = 2; out = *g; }
        """,
        analysis_result,
    )
    assert lts.objects[("m1", 0)].escapes_creator


def test_multi_thread_object(analysis_result, example8):
    lts = lifetimes(example8, analysis_result(example8))
    b1 = lts.objects[("s1", 0)]
    b2 = lts.objects[("s3", 0)]
    assert b1.multi_thread
    assert not b2.multi_thread
    assert b1.placement_pid == (0,)  # shared level: the common parent
    assert b2.placement_pid == (0, 1)  # thread 2's own level


def test_birthdates_recorded(analysis_result):
    prog, lts = lts_of(
        """
        var out = 0;
        func mk() { var p = 0; m1: p = malloc(1); out = *p; }
        func main() { c1: mk(); }
        """,
        analysis_result,
    )
    lt = lts.objects[("m1", 0)]
    assert lt.birth_ps == (("+", "main", "<entry>"), ("+", "mk", "c1"))


def test_accessors_collected(analysis_result, example8):
    lts = lifetimes(example8, analysis_result(example8))
    b1 = lts.objects[("s1", 0)]
    assert (0, 0) in b1.accessor_pids and (0, 1) in b1.accessor_pids
    assert "s2" in b1.accessor_labels and "s4" in b1.accessor_labels


def test_site_summary(analysis_result, example8):
    lts = lifetimes(example8, analysis_result(example8))
    s1 = lts.site_summary("s1")
    assert s1["multi_thread"] and not s1["stack_allocatable"]
    s3 = lts.site_summary("s3")
    assert not s3["multi_thread"]


def test_unaccessed_object_trivial(analysis_result):
    prog, lts = lts_of(
        "var p = 0; func main() { m1: p = malloc(1); }", analysis_result
    )
    lt = lts.objects[("m1", 0)]
    assert not lt.escapes_creator and not lt.multi_thread


def test_loop_allocations_multiple_objects(analysis_result):
    prog, lts = lts_of(
        """
        var p = 0; var i = 0;
        func main() { while (i < 2) { m1: p = malloc(1); i = i + 1; } }
        """,
        analysis_result,
    )
    assert ("m1", 0) in lts.objects and ("m1", 1) in lts.objects
