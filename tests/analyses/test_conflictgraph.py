"""Shasha–Snir conflict graph / delay insertion tests."""

import pytest

from repro.analyses.conflictgraph import conflict_graph, extract_segments
from repro.explore import explore
from repro.lang import parse_program
from repro.util.errors import AnalysisError


def test_extract_segments(fig2):
    segs = extract_segments(fig2)
    assert segs.labels == [["s1", "s2"], ["s3", "s4"]]
    assert segs.program_edges() == [("s1", "s2"), ("s3", "s4")]


def test_extract_rejects_branches():
    prog = parse_program(
        "var g = 0; func main() { cobegin { if (g) { g = 1; } } { g = 2; } }"
    )
    with pytest.raises(AnalysisError):
        extract_segments(prog)


def test_extract_requires_cobegin():
    prog = parse_program("var g = 0; func main() { g = 1; }")
    with pytest.raises(AnalysisError):
        extract_segments(prog)


def test_fig2_conflicts(fig2):
    cg = conflict_graph(fig2, explore(fig2, "full"))
    assert cg.conflicts == {frozenset(("s1", "s4")), frozenset(("s2", "s3"))}


def test_fig2_critical_cycle(fig2):
    cg = conflict_graph(fig2, explore(fig2, "full"))
    cycles = cg.critical_cycles()
    assert ("s1", "s2", "s3", "s4") in cycles


def test_fig2_needs_delays_in_both_segments(fig2):
    cg = conflict_graph(fig2, explore(fig2, "full"))
    assert cg.minimal_delays() == [("s1", "s2"), ("s3", "s4")]


def test_no_conflicts_no_delays():
    prog = parse_program(
        "var a = 0; var b = 0; func main() { cobegin { s1: a = 1; s2: a = 2; } { s3: b = 1; s4: b = 2; } }"
    )
    cg = conflict_graph(prog, explore(prog, "full"))
    assert cg.conflicts == set()
    assert cg.minimal_delays() == []


def test_single_conflict_no_cycle_no_delay():
    prog = parse_program(
        """
        var x = 0; var a = 0; var b = 0;
        func main() { cobegin { s1: x = 1; s2: a = 2; } { s3: b = 1; s4: b = x; } }
        """
    )
    cg = conflict_graph(prog, explore(prog, "full"))
    assert cg.conflicts == {frozenset(("s1", "s4"))}
    assert cg.critical_cycles() == []
    assert cg.minimal_delays() == []


def test_example15_call_level_delays(example15):
    cg = conflict_graph(example15, explore(example15, "full"))
    assert cg.conflicts == {frozenset(("s1", "s4")), frozenset(("s2", "s3"))}
    assert cg.minimal_delays() == [("s1", "s2"), ("s3", "s4")]


def test_three_segments():
    prog = parse_program(
        """
        var x = 0; var y = 0; var z = 0;
        func main() {
            cobegin { s1: x = 1; s2: y = 1; }
                    { s3: y = 2; s4: z = 1; }
                    { s5: z = 2; s6: x = 2; }
        }
        """
    )
    cg = conflict_graph(prog, explore(prog, "full"))
    assert len(cg.segments.labels) == 3
    # the long cycle through all three segments exists
    cycles = cg.critical_cycles()
    assert any(len(c) == 6 for c in cycles)
