"""Interference-aware constant propagation / LICM tests (intro + §7)."""

from repro.analyses.constprop import constants_at, licm_report
from repro.lang import parse_program
from repro.programs.paper import intro_busywait_loop


def test_sequential_constants():
    prog = parse_program(
        "var a = 0; var b = 0; func main() { s1: a = 5; s2: b = a + 1; s3: a = b; }"
    )
    cp = constants_at(prog)
    assert cp.constant("s2", "a") == 5
    assert cp.constant("s3", "b") == 6


def test_constant_lost_at_join():
    prog = parse_program(
        """
        var c = 0; var g = 0; var r = 0;
        func main() {
            if (c) { g = 1; } else { g = 2; }
            s3: r = g;
        }
        """
    )
    cp = constants_at(prog)
    # c == 0, so only the else branch runs: g IS constant 2 at s3
    assert cp.constant("s3", "g") == 2


def test_racy_global_not_constant():
    prog = parse_program(
        "var g = 0; func main() { cobegin { g = 1; } { s2: skip; } s3: g = g; }"
    )
    cp = constants_at(prog)
    # at s2, g may be 0 or 1 depending on the sibling
    assert cp.constant("s2", "g") is None


def test_busywait_flag_not_constant_at_loop():
    prog = intro_busywait_loop()
    cp = constants_at(prog)
    assert cp.constant("l1", "s") is None  # the interference fact


def test_busywait_positive_fact_after_wait():
    prog = intro_busywait_loop()
    cp = constants_at(prog)
    # once the wait passes, x is known to be 42 (w1 precedes w2)
    assert cp.constant("r1", "x") == 42
    assert cp.constant("r1", "s") == 1


def test_licm_flags_shared_flag_unsafe():
    report = licm_report(intro_busywait_loop())
    loops = [l for l in report if l.seq_invariant]
    assert len(loops) == 1
    l = loops[0]
    assert l.seq_invariant == ("s",)
    assert l.unsafe == ("s",)
    assert l.safe == ()


def test_licm_safe_when_truly_invariant():
    prog = parse_program(
        """
        var k = 7; var g = 0; var i = 0;
        func main() { while (i < k) { i = i + 1; g = g + 1; } }
        """
    )
    report = licm_report(prog)
    l = [x for x in report if x.seq_invariant][0]
    assert "k" in l.safe and not l.unsafe


def test_licm_body_write_not_invariant():
    prog = parse_program(
        "var k = 7; var i = 0; func main() { while (i < k) { k = k - 1; i = i + 1; } }"
    )
    report = licm_report(prog)
    for l in report:
        assert "k" not in l.seq_invariant


def test_licm_write_through_call_detected():
    prog = parse_program(
        """
        var k = 3; var i = 0;
        func bump() { k = k + 1; }
        func main() { while (i < k) { bump(); i = i + 1; } }
        """
    )
    report = licm_report(prog)
    for l in report:
        assert "k" not in l.seq_invariant


def test_constants_report_structure():
    prog = parse_program("var g = 1; func main() { s1: g = g + 1; }")
    cp = constants_at(prog)
    assert cp.at["s1"]["g"] == 1
    assert cp.fold.stats.num_states > 0
