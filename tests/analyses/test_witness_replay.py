"""Witness replay tests: explored paths are genuine executions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyses.witness import (
    deadlock_witness,
    fault_witness,
    outcome_witness,
    replay,
    shortest_path_to,
)
from repro.explore import explore
from repro.programs.paper import deadlock_pair, fig2_shasha_snir
from tests.properties.test_reduction_soundness import programs


def test_replay_deadlock_reaches_deadlocked_config():
    prog = deadlock_pair()
    r = explore(prog, "full")
    w = deadlock_witness(r)
    final = replay(prog, w)
    assert final == r.graph.configs[w.target]


def test_replay_outcome(fig2):
    r = explore(fig2, "full")
    w = outcome_witness(r, x=1, y=1)
    final = replay(fig2, w)
    names = fig2.global_names
    vals = dict(zip(names, final.globals))
    # the witness path reaches the target configuration; x=1,y=1 holds
    # at the terminal the BFS selected
    target = r.graph.configs[w.target]
    assert final == target


def test_replay_fault():
    from repro.lang import parse_program

    prog = parse_program(
        "var g = 0; func main() { cobegin { g = 1; } { f1: g = 2 / g; } }"
    )
    r = explore(prog, "full")
    w = fault_witness(r)
    final = replay(prog, w)
    assert final.fault is not None


@given(prog=programs(), data=st.data())
@settings(max_examples=25, deadline=None)
def test_every_terminal_witness_replays(prog, data):
    r = explore(prog, "full")
    terminals = r.graph.terminals()
    if not terminals:
        return
    target = data.draw(st.sampled_from(terminals))
    w = shortest_path_to(r.graph, target)
    assert w is not None
    final = replay(prog, w)
    assert final == r.graph.configs[target]


@given(prog=programs(), data=st.data())
@settings(max_examples=20, deadline=None)
def test_reduced_graph_witnesses_are_real_executions(prog, data):
    """Even in a coarsened+stubborn graph, every edge block replays as a
    genuine execution sequence (the block actions flatten into steps)."""
    r = explore(prog, "stubborn", coarsen=True)
    terminals = r.graph.terminals()
    if not terminals:
        return
    target = data.draw(st.sampled_from(terminals))
    w = shortest_path_to(r.graph, target)
    assert w is not None
    final = replay(prog, w)
    assert final == r.graph.configs[target]
