"""Witness-extraction tests."""

from repro.analyses.witness import (
    deadlock_witness,
    fault_witness,
    outcome_witness,
    shortest_path_to,
)
from repro.explore import explore
from repro.lang import parse_program
from repro.programs.paper import deadlock_pair, fig2_shasha_snir
from repro.semantics import run_program


def test_deadlock_witness_found():
    prog = deadlock_pair()
    r = explore(prog, "full")
    w = deadlock_witness(r)
    assert w is not None
    labels = [l for _, l in w.steps]
    # the classic pattern: each thread grabs its first lock
    assert "a1" in labels and "b1" in labels
    assert "a2" not in labels and "b2" not in labels  # blocked before these


def test_no_deadlock_no_witness(fig2):
    r = explore(fig2, "full")
    assert deadlock_witness(r) is None


def test_fault_witness():
    prog = parse_program(
        "var g = 0; func main() { cobegin { g = 1; } { f1: g = 1 / g; } }"
    )
    r = explore(prog, "full")
    w = fault_witness(r)
    assert w is not None
    assert w.steps[-1][1] == "f1"


def test_outcome_witness_replayable(fig2):
    r = explore(fig2, "full")
    w = outcome_witness(r, x=0, y=1)
    assert w is not None
    labels = [l for _, l in w.steps]
    # to get x=0, s4 must run before s1
    assert labels.index("s4") < labels.index("s1")


def test_unreachable_outcome_none(fig2):
    r = explore(fig2, "full")
    assert outcome_witness(r, x=0, y=0) is None  # SC-impossible


def test_witness_is_shortest():
    prog = parse_program(
        "var g = 0; func main() { s1: g = 1; s2: g = 2; s3: g = 3; }"
    )
    r = explore(prog, "full")
    w = outcome_witness(r, g=3)
    assert w is not None
    assert len(w.steps) == 4  # s1 s2 s3 + implicit return


def test_initial_config_trivial_witness(fig2):
    r = explore(fig2, "full")
    w = shortest_path_to(r.graph, r.graph.initial)
    assert w is not None and len(w) == 0


def test_describe_renders():
    prog = deadlock_pair()
    r = explore(prog, "full")
    text = deadlock_witness(r).describe()
    assert "thread" in text and "a1" in text
