"""Memory-placement tests (§7)."""

from repro.analyses.lifetime import lifetimes
from repro.analyses.memplace import placements


def test_example8_placement(example8, analysis_result):
    lts = lifetimes(example8, analysis_result(example8))
    place = placements(lts)
    b1, b2 = place["s1"], place["s3"]
    assert not b1.thread_local  # accessed by both threads
    assert b1.level_pid == (0,)  # the shared (parent) level
    assert b2.thread_local
    assert b2.level_pid == (0, 1)


def test_placement_descriptions(example8, analysis_result):
    lts = lifetimes(example8, analysis_result(example8))
    place = placements(lts)
    assert "shared" in place["s1"].describe()
    assert "thread-local" in place["s3"].describe()


def test_lifetime_extents_program(analysis_result):
    from repro.programs.paper import lifetime_extents

    prog = lifetime_extents()
    lts = lifetimes(prog, analysis_result(prog))
    place = placements(lts)
    # m1 never escapes local_use
    assert place["m1"].stack_allocatable
    # m2 escapes via return, but stays single-threaded
    assert place["m2"].thread_local and not place["m2"].stack_allocatable
    # m3 is shared between the cobegin branches
    assert not place["m3"].thread_local


def test_all_sites_placed(example8, analysis_result):
    lts = lifetimes(example8, analysis_result(example8))
    assert set(placements(lts)) == {"s1", "s3"}
