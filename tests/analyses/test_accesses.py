"""Static access-set and sharedness tests."""

from repro.analyses.accesses import ANY_GLOBAL, AccessAnalysis, matches
from repro.lang import parse_program


def analysis(src):
    return AccessAnalysis(parse_program(src))


def test_future_includes_everything_ahead():
    a = analysis("var x = 0; var y = 0; func main() { x = 1; y = x; }")
    fut = a.future("main", 0)
    assert ("g", 0) in fut.writes
    assert ("g", 0) in fut.reads  # read later by y = x
    assert ("g", 1) in fut.writes


def test_future_shrinks_as_pc_advances():
    a = analysis("var x = 0; var y = 0; func main() { x = 1; y = 2; }")
    assert ("g", 0) in a.future("main", 0).writes
    assert ("g", 0) not in a.future("main", 1).writes


def test_future_through_calls():
    a = analysis(
        "var g = 0; func f() { g = 1; } func main() { f(); }"
    )
    assert ("g", 0) in a.future("main", 0).writes


def test_future_through_branches():
    a = analysis(
        "var x = 0; var y = 0; func main() { if (x) { y = 1; } else { x = 2; } }"
    )
    fut = a.future("main", 0)
    assert ("g", 0) in fut.writes and ("g", 1) in fut.writes


def test_future_through_cobegin_branches():
    a = analysis(
        "var x = 0; var y = 0; func main() { cobegin { x = 1; } { y = 1; } }"
    )
    fut = a.future("main", 0)
    assert ("g", 0) in fut.writes and ("g", 1) in fut.writes


def test_recursive_function_future_converges():
    a = analysis(
        """
        var g = 0;
        func f(n) { if (n > 0) { g = g + n; f(n - 1); } }
        func main() { f(3); }
        """
    )
    assert ("g", 0) in a.future("main", 0).writes


def test_deref_resolves_to_sites():
    a = analysis(
        "var p = 0; var out = 0; func main() { m1: p = malloc(1); out = *p; }"
    )
    fut = a.future("main", 0)
    assert ("site", "m1") in fut.reads


def test_deref_of_addrof_hits_globals():
    a = analysis(
        "var g = 0; var p = 0; func main() { p = &g; *p = 1; }"
    )
    fut = a.future("main", 0)
    assert ANY_GLOBAL in fut.writes


def test_matches_semantics():
    s = frozenset({("g", 0), ("site", "m1")})
    assert matches(s, ("g", 0))
    assert not matches(s, ("g", 1))
    assert matches(s, ("h", ("m1", 0), 3))
    assert not matches(s, ("h", ("m2", 0), 0))
    assert not matches(s, ("p", (0, 1)))
    assert matches(frozenset({ANY_GLOBAL}), ("g", 7))


def test_sharedness_concurrent_write():
    a = analysis(
        "var x = 0; func main() { cobegin { x = 1; } { x = 2; } }"
    )
    assert a.crit_write(("g", 0))


def test_sharedness_read_vs_write():
    a = analysis(
        "var x = 0; var y = 0; func main() { cobegin { y = x; } { x = 1; } }"
    )
    assert a.crit_read(("g", 0))
    assert not a.crit_read(("g", 1))  # y never written concurrently
    assert not a.crit_write(("g", 1))


def test_sequential_accesses_not_critical():
    a = analysis("var x = 0; func main() { x = 1; x = x + 1; }")
    assert not a.crit_read(("g", 0))
    assert not a.crit_write(("g", 0))


def test_sequential_cobegins_not_concurrent():
    # two cobegins one after another: branches of different cobegins
    # never overlap; x is only touched in the first, y in the second
    a = analysis(
        """
        var x = 0; var y = 0;
        func main() {
            cobegin { x = 1; } { x = 2; }
            cobegin { y = 1; } { y = 2; }
        }
        """
    )
    assert a.crit_write(("g", 0)) and a.crit_write(("g", 1))
    # crit_read asks "may a read of this location see a concurrent
    # write" — true for both here since each is concurrently written
    assert a.crit_read(("g", 0)) and a.crit_read(("g", 1))


def test_control_structure_helpers():
    a = analysis(
        "var g = 0; func f() { g = 1; } func main() { f(); g = 2; }"
    )
    assert a.returns_of("f")
    assert ("main", 0) in a.entry_callers("f")
    reach = a.reachable_from("main", 0)
    assert ("f", 0) in reach


def test_gen_at_cached():
    a = analysis("var g = 0; func main() { g = 1; }")
    assert a.gen_at("main", 0) is a.gen_at("main", 0)
