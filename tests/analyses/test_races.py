"""Access-anomaly detection tests."""

from repro.analyses.races import races
from repro.explore import explore
from repro.lang import parse_program
from repro.programs.paper import mutex_counter, racy_counter


def races_of(src):
    prog = parse_program(src)
    return races(prog, explore(prog, "full"))


def test_plain_write_write_race():
    rs = races_of("var g = 0; func main() { cobegin { a: g = 1; } { b: g = 2; } }")
    assert len(rs) == 1
    r = rs[0]
    assert r.pair() == frozenset(("a", "b"))
    assert r.both_write
    assert r.loc == ("g", "g")


def test_read_write_race():
    rs = races_of(
        "var g = 0; var r = 0; func main() { cobegin { a: r = g; } { b: g = 1; } }"
    )
    assert len(rs) == 1 and not rs[0].both_write


def test_no_race_when_locked():
    assert races(mutex_counter(), explore(mutex_counter(), "full")) == []


def test_lost_update_race_found():
    prog = racy_counter()
    rs = races(prog, explore(prog, "full"))
    assert any(r.loc == ("g", "count") for r in rs)


def test_no_race_same_thread():
    rs = races_of("var g = 0; func main() { a: g = 1; b: g = 2; }")
    assert rs == []


def test_assume_ordering_prevents_race():
    rs = races_of(
        """
        var f = 0; var x = 0;
        func main() {
            cobegin { a: x = 1; b: f = 1; }
                    { c: assume(f == 1); d: x = 2; }
        }
        """
    )
    # a and d both write x but are ordered through the flag handshake
    assert not any(r.pair() == frozenset(("a", "d")) for r in rs)


def test_heap_race_reported_by_site(example8):
    rs = races(example8, explore(example8, "full"))
    assert any(r.loc == ("site", "s1") for r in rs)


def test_reads_never_race():
    rs = races_of(
        "var g = 1; var a = 0; var b = 0; "
        "func main() { cobegin { x: a = g; } { y: b = g; } }"
    )
    assert rs == []
