"""Side-effect analysis tests (§5.1)."""

from repro.analyses.sideeffects import (
    effects_conflict,
    label_effects_with_callees,
    side_effects,
)
from repro.explore import explore
from repro.lang import parse_program


def effects(src):
    prog = parse_program(src)
    return prog, side_effects(prog, explore(prog, "full"))


def test_direct_global_effects():
    prog, eff = effects("var g = 0; func main() { g = g + 1; }")
    e = eff.by_func["main"]
    assert ("g", "g") in e.ref and ("g", "g") in e.mod


def test_callee_effects_surface_in_caller():
    prog, eff = effects(
        "var g = 0; func f() { g = 1; } func main() { f(); }"
    )
    assert ("g", "g") in eff.by_func["f"].mod
    assert ("g", "g") in eff.by_func["main"].mod


def test_pure_function_detected():
    prog, eff = effects(
        "var r = 0; func pure(a) { return a * 2; } func main() { r = pure(3); }"
    )
    assert "pure" in eff.functions_pure()
    # main writes r, so not pure
    assert "main" not in eff.functions_pure()


def test_read_only_function():
    prog, eff = effects(
        "var g = 5; var r = 0; func peek() { return g; } func main() { r = peek(); }"
    )
    assert "peek" in eff.functions_read_only()
    assert "peek" not in eff.functions_pure()


def test_heap_effects_by_site():
    prog, eff = effects(
        "var p = 0; var r = 0; func main() { m1: p = malloc(1); *p = 3; r = *p; }"
    )
    e = eff.by_func["main"]
    assert ("site", "m1") in e.mod and ("site", "m1") in e.ref


def test_per_label_effects():
    prog, eff = effects("var g = 0; func main() { s1: g = 1; }")
    assert ("g", "g") in eff.by_label["s1"].mod


def test_per_thread_effects():
    prog, eff = effects(
        "var a = 0; var b = 0; func main() { cobegin { a = 1; } { b = 1; } }"
    )
    assert ("g", "a") in eff.by_thread[(0, 0)].mod
    assert ("g", "b") in eff.by_thread[(0, 1)].mod
    assert ("g", "b") not in eff.by_thread[(0, 0)].mod


def test_example8_thread_effects(example8, analysis_result):
    eff = side_effects(example8, analysis_result(example8))
    t1 = eff.by_thread[(0, 0)]
    t2 = eff.by_thread[(0, 1)]
    assert ("site", "s1") in t1.mod  # *y = 10
    assert ("site", "s1") in t2.ref  # *x = *y reads b1
    assert ("site", "s3") in t2.mod  # *x = *y writes b2
    assert ("site", "s3") not in t1.ref | t1.mod  # b2 untouched by thread 1


def test_label_effects_absorb_callees(example15):
    r = explore(example15, "full")
    effs = label_effects_with_callees(example15, r)
    assert ("g", "g1") in effs["s1"].mod  # f1 writes g1
    assert ("g", "g1") in effs["s4"].mod  # f4 writes g1


def test_effects_conflict_predicate():
    from repro.analyses.sideeffects import EffectSet

    a = EffectSet(ref={("g", "x")}, mod=set())
    b = EffectSet(ref=set(), mod={("g", "x")})
    c = EffectSet(ref={("g", "y")}, mod=set())
    assert effects_conflict(a, b)
    assert not effects_conflict(a, c)
    assert not effects_conflict(a, a)  # read/read never conflicts


def test_locals_never_appear():
    prog, eff = effects("var g = 0; func main() { var t = 1; t = t + 1; g = t; }")
    e = eff.by_func["main"]
    assert all(l[0] in ("g", "site") for l in e.ref | e.mod)
