"""full_report rendering tests."""

from repro.analyses.report import full_report
from repro.explore import ExploreOptions, explore
from repro.lang import parse_program
from repro.semantics import StepOptions


def report_of(prog):
    r = explore(
        prog,
        options=ExploreOptions(
            policy="full", step=StepOptions(gc=False, track_procstrings=True)
        ),
    )
    return full_report(prog, r)


def test_report_sections_present(example8):
    text = report_of(example8)
    for section in (
        "exploration[full]",
        "side effects",
        "cross-thread dependences",
        "access anomalies",
        "object lifetimes / placement",
    ):
        assert section in text


def test_report_no_heap_section_without_allocs(fig2):
    text = report_of(fig2)
    assert "object lifetimes" not in text


def test_report_licm_section():
    from repro.programs.paper import intro_busywait_loop

    text = report_of(intro_busywait_loop())
    assert "loop-invariant loads" in text
    assert "UNSAFE=['s']" in text


def test_report_deadlock_count():
    from repro.programs.paper import deadlock_pair

    text = report_of(deadlock_pair())
    assert "1 deadlocked" in text


def test_report_pure_function_tagged():
    prog = parse_program(
        "var r = 0; func pure(a) { return a + 1; } func main() { r = pure(1); }"
    )
    text = report_of(prog)
    assert "pure: ref={-} mod={-} [pure]" in text
