"""Data-dependence analysis tests (§5.2)."""

from repro.analyses.dependence import ANTI, FLOW, INIT, OUTPUT, dependences
from repro.explore import explore
from repro.lang import parse_program


def deps_of(src):
    prog = parse_program(src)
    return dependences(prog, explore(prog, "full"))


def has(deps, kind, src, dst, loc_name=None):
    for d in deps.deps:
        if d.kind == kind and d.src == src and d.dst == dst:
            if loc_name is None or d.loc[1] == loc_name:
                return d
    return None


def test_sequential_flow():
    deps = deps_of("var g = 0; func main() { s1: g = 1; s2: g = g + 1; }")
    d = has(deps, FLOW, "s1", "s2", "g")
    assert d is not None and not d.cross_thread


def test_sequential_output():
    deps = deps_of("var g = 0; func main() { s1: g = 1; s2: g = 2; }")
    assert has(deps, OUTPUT, "s1", "s2", "g")


def test_sequential_anti():
    deps = deps_of(
        "var g = 0; var r = 0; func main() { s1: r = g; s2: g = 1; }"
    )
    d = has(deps, ANTI, "s1", "s2", "g")
    assert d is not None


def test_init_writes_tracked():
    deps = deps_of("var g = 5; var r = 0; func main() { s1: r = g; }")
    d = has(deps, FLOW, INIT, "s1", "g")
    assert d is not None and not d.cross_thread


def test_no_false_deps_between_independent():
    deps = deps_of(
        "var a = 0; var b = 0; func main() { s1: a = 1; s2: b = 2; }"
    )
    assert not has(deps, FLOW, "s1", "s2")
    assert not has(deps, OUTPUT, "s1", "s2")
    assert not has(deps, ANTI, "s1", "s2")


def test_cross_thread_flow_and_anti(fig2):
    deps = dependences(fig2, explore(fig2, "full"))
    d = has(deps, FLOW, "s1", "s4", "A")  # s4 can read s1's write
    assert d is not None and d.cross_thread
    d = has(deps, ANTI, "s4", "s1", "A")  # or read before it
    assert d is not None and d.cross_thread


def test_heap_dependences(example8):
    deps = deps_of(
        """
        var x = 0; var y = 0;
        func main() {
            cobegin
            { s1: y = malloc(1); s2: *y = 10; }
            { s3: x = malloc(1); w1: assume(y != 0); s4: *x = *y; }
        }
        """
    )
    d = has(deps, FLOW, "s2", "s4")
    assert d is not None and d.cross_thread and d.loc == ("site", "s1")


def test_example15_pairs(example15):
    deps = dependences(example15, explore(example15, "full"))
    pairs = deps.pairs(cross_only=True)
    # the statement-level pairs realize through the callee bodies
    assert frozenset(("u1", "u4")) in pairs
    assert frozenset(("u2", "u3")) in pairs


def test_example8_sequential_listing():
    # the paper's original four-statement listing, run sequentially
    from repro.programs.paper import example8_sequential

    prog = example8_sequential()
    deps = dependences(prog, explore(prog, "full"))
    assert has(deps, FLOW, "s1", "s2", None)  # y's pointer flows s1→s2
    assert has(deps, FLOW, "s2", "s4")  # the value 10 through b1
    d = has(deps, FLOW, "s2", "s4")
    assert d.loc == ("site", "s1") and not d.cross_thread
    assert has(deps, FLOW, "s3", "s4", "x")  # x's pointer
    assert not has(deps, FLOW, "s1", "s3")  # the mallocs are independent


def test_loop_carried_flow():
    deps = deps_of(
        "var g = 0; func main() { l: while (g < 3) { s1: g = g + 1; } }"
    )
    d = has(deps, FLOW, "s1", "s1", "g")
    assert d is not None  # g flows around the loop


def test_branch_dependences_joined():
    deps = deps_of(
        """
        var c = 1; var g = 0; var r = 0;
        func main() {
            if (c) { s1: g = 1; } else { s2: g = 2; }
            s3: r = g;
        }
        """
    )
    assert has(deps, FLOW, "s1", "s3", "g")
    # the else branch is unreachable (c == 1), so no s2 dependence
    assert not has(deps, FLOW, "s2", "s3", "g")


def test_of_kind_sorted():
    deps = deps_of("var g = 0; func main() { s1: g = 1; s2: g = 2; }")
    outs = deps.of_kind(OUTPUT)
    assert all(d.kind == OUTPUT for d in outs)


def test_pairs_exclude_init():
    deps = deps_of("var g = 1; var r = 0; func main() { s1: r = g; }")
    for pair in deps.pairs():
        assert INIT not in pair
