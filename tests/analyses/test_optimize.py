"""Constant-folding transformation tests (§7 optimization)."""

import pytest

from repro.analyses.optimize import optimize_program
from repro.explore import explore
from repro.lang import parse_program
from repro.programs import paper


def roundtrip_outcomes(program):
    """Optimize, recompile, and compare exploration outcomes."""
    opt = optimize_program(program)
    new_prog = parse_program(opt.source)
    before = explore(program, "full").final_stores()
    after = explore(new_prog, "full").final_stores()
    return opt, before, after


def test_simple_chain_folds():
    prog = parse_program(
        "var a = 0; var b = 0; func main() { a = 5; b = a + 1; }"
    )
    opt, before, after = roundtrip_outcomes(prog)
    assert before == after
    assert any(s.name == "a" and s.value == 5 for s in opt.substitutions)
    assert "b = 6;" in opt.source


def test_busywait_flag_not_substituted():
    prog = paper.intro_busywait_loop()
    opt, before, after = roundtrip_outcomes(prog)
    assert before == after
    # the spin flag s must never be replaced inside the loop guard
    assert not any(s.name == "s" and "l1" in s.label for s in opt.substitutions)
    assert "while (s == 0)" in opt.source
    # but the positive fact IS used: r = x becomes r = 42
    assert "r = 42;" in opt.source


def test_racy_global_untouched():
    prog = parse_program(
        "var g = 0; var r = 0; func main() { cobegin { g = 1; } { s2: r = g; } }"
    )
    opt, before, after = roundtrip_outcomes(prog)
    assert before == after
    assert not any(s.name == "g" for s in opt.substitutions)


def test_locals_shadowing_respected():
    prog = parse_program(
        """
        var g = 0; var r = 0;
        func main() { g = 7; var x = 1; r = x + g; }
        """
    )
    opt, before, after = roundtrip_outcomes(prog)
    assert before == after
    # g substituted (7), the local x untouched by name-substitution
    assert any(s.name == "g" for s in opt.substitutions)
    assert not any(s.name == "x" for s in opt.substitutions)


def test_whole_corpus_preserved():
    from repro.programs.corpus import CORPUS

    for name in (
        "fig2_shasha_snir",
        "fig5_locality",
        "example8_pointers",
        "mutex_counter",
        "racy_counter",
        "nested_cobegin",
        "firstclass_functions",
    ):
        prog = CORPUS[name]()
        opt, before, after = roundtrip_outcomes(prog)
        assert before == after, name


def test_folding_counts_reported():
    prog = parse_program("var a = 0; func main() { a = 2 + 3 * 4; }")
    opt = optimize_program(prog)
    assert opt.folded_ops == 2  # literal arithmetic folds too
    assert "a = 14;" in opt.source
    prog2 = parse_program("var a = 0; var b = 0; func main() { a = 4; b = a * 2 + 1; }")
    opt2 = optimize_program(prog2)
    assert opt2.folded_ops >= 2  # 4*2 and 8+1
    assert "b = 9;" in opt2.source


def test_requires_source():
    from repro.lang import builder as B
    from repro.lang import compile_program

    prog = compile_program(
        B.program(B.globals(g=0), B.func("main")(B.assign("g", 1)))
    )
    from repro.util.errors import AnalysisError

    with pytest.raises(AnalysisError):
        optimize_program(prog)


def test_describe():
    prog = parse_program("var a = 0; var b = 0; func main() { a = 1; b = a; }")
    opt = optimize_program(prog)
    assert "substitutions" in opt.describe()
