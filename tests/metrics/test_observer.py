"""MetricsObserver ↔ engine integration: the deep instrumentation."""

from repro.explore import ExploreOptions, explore
from repro.metrics import MetricsObserver, MetricsRegistry, attached_registry
from repro.programs.philosophers import philosophers
from repro.programs.synthetic import local_heavy


def test_graph_counters_match_stats(fig2):
    mo = MetricsObserver()
    r = explore(fig2, "full", observers=(mo,))
    reg = mo.registry
    assert reg.counter("explore.edges").value == r.stats.num_edges
    # fresh on_config announcements include the initial configuration
    # (same contract as the parallel merge)
    assert reg.counter("explore.configs").value == r.stats.num_configs
    assert reg.counter("explore.expansions").value == r.stats.expansions
    assert (
        reg.counter("explore.terminal.terminated").value
        == r.stats.num_terminated
    )
    assert reg.gauge("graph.configs").value == r.stats.num_configs


def test_intern_hit_rate_identity(fig2):
    # every add_config is either a hit or a miss; misses intern fresh
    # configurations (including the initial one), and every edge target
    # plus the initial config is one add_config call
    mo = MetricsObserver()
    r = explore(fig2, "full", observers=(mo,))
    hits = mo.registry.counter("explore.intern.hits").value
    misses = mo.registry.counter("explore.intern.misses").value
    assert misses == r.stats.num_configs
    assert hits + misses == r.stats.num_edges + 1


def test_frontier_depth_observed(fig2):
    mo = MetricsObserver()
    r = explore(fig2, "full", observers=(mo,))
    fd = mo.registry.histogram("explore.frontier_depth")
    assert fd.count == r.stats.expansions
    assert fd.max >= 1


def test_stubborn_metrics(fig2):
    mo = MetricsObserver()
    r = explore(fig2, "stubborn", observers=(mo,))
    reg = mo.registry
    se = reg.histogram("stubborn.enabled")
    assert se.count == r.stats.stubborn.steps
    assert se.total == r.stats.stubborn.enabled_total
    assert reg.histogram("stubborn.chosen").total == r.stats.stubborn.chosen_total
    assert (
        reg.counter("stubborn.singleton_steps").value
        == r.stats.stubborn.singleton_steps
    )
    assert reg.histogram("stubborn.closure_iterations").count > 0


def test_stubborn_proc_metrics(fig2):
    mo = MetricsObserver()
    r = explore(fig2, "stubborn-proc", observers=(mo,))
    assert (
        mo.registry.histogram("stubborn.enabled").count
        == r.stats.stubborn.steps
    )


def test_coarsen_block_length_histogram():
    mo = MetricsObserver()
    explore(local_heavy(2, 4), "full", coarsen=True, observers=(mo,))
    bl = mo.registry.histogram("coarsen.block_len")
    assert bl.count > 0
    assert bl.max >= 3  # thread-local runs fuse (the coarsening best case)


def test_sleep_driver_reports_metrics(fig2):
    mo = MetricsObserver()
    r = explore(fig2, "stubborn", sleep=True, observers=(mo,))
    reg = mo.registry
    assert reg.counter("explore.expansions").value == r.stats.expansions
    assert reg.timer("explore.wall_s").count == 1
    assert reg.gauge("explore.expansions_per_s").value > 0


def test_wall_clock_and_rate(fig2):
    mo = MetricsObserver()
    r = explore(fig2, "full", observers=(mo,))
    wall = mo.registry.timer("explore.wall_s")
    assert wall.count == 1 and wall.total_s > 0
    rate = mo.registry.gauge("explore.expansions_per_s").value
    assert abs(rate - r.stats.expansions / wall.total_s) < 1e-6


def test_deterministic_except_timing(fig2):
    a, b = MetricsObserver(), MetricsObserver()
    explore(fig2, "stubborn", coarsen=True, observers=(a,))
    explore(fig2, "stubborn", coarsen=True, observers=(b,))
    sa, sb = a.snapshot(), b.snapshot()
    timing = {"explore.wall_s", "explore.expansions_per_s"}
    assert {k: v for k, v in sa.items() if k not in timing} == {
        k: v for k, v in sb.items() if k not in timing
    }


def test_attached_registry_detection():
    mo = MetricsObserver()
    assert attached_registry((mo,)) is mo.registry
    assert attached_registry(()) is None
    reg = MetricsRegistry()
    assert attached_registry((MetricsObserver(reg),)) is reg


def test_default_path_allocates_no_registry(fig2):
    # zero-cost contract: without a MetricsObserver the graph carries no
    # registry and no instrument is ever created
    r = explore(fig2, "stubborn", coarsen=True)
    assert r.graph.metrics is None


def test_results_identical_with_and_without_metrics():
    prog = philosophers(3)
    plain = explore(prog, "stubborn", coarsen=True, sleep=True)
    mo = MetricsObserver()
    instrumented = explore(
        prog, "stubborn", coarsen=True, sleep=True, observers=(mo,)
    )
    assert plain.final_stores() == instrumented.final_stores()
    assert plain.stats.num_configs == instrumented.stats.num_configs
    assert plain.stats.num_edges == instrumented.stats.num_edges
