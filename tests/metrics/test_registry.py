"""MetricsRegistry instrument semantics."""

import json

import pytest

from repro.metrics import MetricsRegistry
from repro.metrics.registry import _bucket_of


def test_counter_accumulates():
    reg = MetricsRegistry()
    reg.inc("a")
    reg.inc("a", 4)
    assert reg.counter("a").value == 5
    assert reg.value("a") == 5


def test_gauge_last_write_wins():
    reg = MetricsRegistry()
    reg.set_gauge("g", 1.5)
    reg.set_gauge("g", 2.5)
    assert reg.value("g") == 2.5


def test_histogram_summary():
    reg = MetricsRegistry()
    for v in (1, 2, 3, 10):
        reg.observe("h", v)
    h = reg.histogram("h")
    assert h.count == 4
    assert h.total == 16
    assert h.min == 1 and h.max == 10
    assert h.mean == 4.0


def test_histogram_buckets_are_powers_of_two():
    assert _bucket_of(0) == 0
    assert _bucket_of(1) == 1
    assert _bucket_of(2) == 2
    assert _bucket_of(3) == 2
    assert _bucket_of(4) == 3
    assert _bucket_of(1024) == 11
    reg = MetricsRegistry()
    for v in (0, 1, 2, 3, 4):
        reg.observe("h", v)
    assert reg.histogram("h").buckets == {0: 1, 1: 1, 2: 2, 3: 1}


def test_timer_context_manager():
    reg = MetricsRegistry()
    with reg.time("t"):
        pass
    with reg.time("t"):
        pass
    t = reg.timer("t")
    assert t.count == 2
    assert t.total_s >= 0.0
    assert t.max_s <= t.total_s


def test_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert "x" in reg and "y" not in reg
    assert len(reg) == 1


def test_type_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_snapshot_is_json_serializable_and_sorted():
    reg = MetricsRegistry()
    reg.inc("b.counter")
    reg.set_gauge("a.gauge", 7)
    reg.observe("c.hist", 3)
    with reg.time("d.timer"):
        pass
    snap = reg.snapshot()
    assert list(snap) == sorted(snap)
    text = json.dumps(snap)
    round_trip = json.loads(text)
    assert round_trip["b.counter"] == {"type": "counter", "value": 1}
    assert round_trip["a.gauge"]["value"] == 7
    assert round_trip["c.hist"]["count"] == 1
