"""MetricsRegistry.merge: the parallel workers' snapshot-folding
primitive.  The invariant that matters: merging per-worker snapshots
into the master registry must be indistinguishable from one registry
having observed everything itself."""

import pytest

from repro.metrics import LAST_WRITE_GAUGES, MetricsRegistry


def test_counters_add():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.inc("explore.expansions", 3)
    b.inc("explore.expansions", 4)
    b.inc("explore.edges")
    a.merge(b.snapshot())
    assert a.value("explore.expansions") == 7
    assert a.value("explore.edges") == 1


def test_gauges_take_max():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.set_gauge("explore.peak_rss_bytes", 100)
    b.set_gauge("explore.peak_rss_bytes", 60)
    a.merge(b.snapshot())
    assert a.value("explore.peak_rss_bytes") == 100
    b.set_gauge("explore.peak_rss_bytes", 250)
    a.merge(b.snapshot())
    assert a.value("explore.peak_rss_bytes") == 250


def test_fresh_gauge_adopts_incoming_value_even_if_negative():
    a, b = MetricsRegistry(), MetricsRegistry()
    b.set_gauge("some.delta", -5)
    a.merge(b.snapshot())
    # a never saw the gauge: the incoming value wins over the implicit 0
    assert a.value("some.delta") == -5


def test_last_write_gauges_overwrite():
    assert "resilience.final_rung" in LAST_WRITE_GAUGES
    a, b = MetricsRegistry(), MetricsRegistry()
    a.set_gauge("resilience.final_rung", 3)
    b.set_gauge("resilience.final_rung", 1)
    a.merge(b.snapshot())
    assert a.value("resilience.final_rung") == 1


def test_histogram_merge_equals_union_of_observations():
    values_a = [1, 3, 17, 250, 0]
    values_b = [2, 2, 64, 1000]
    a, b, union = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
    for v in values_a:
        a.observe("stubborn.enabled", v)
    for v in values_b:
        b.observe("stubborn.enabled", v)
    for v in values_a + values_b:
        union.observe("stubborn.enabled", v)
    a.merge(b.snapshot())
    assert a.snapshot() == union.snapshot()


def test_histogram_merge_into_empty_registry():
    b, union = MetricsRegistry(), MetricsRegistry()
    for v in (5, 9):
        b.observe("coarsen.block_len", v)
        union.observe("coarsen.block_len", v)
    a = MetricsRegistry()
    a.merge(b.snapshot())
    assert a.snapshot() == union.snapshot()


def test_timers_add_and_keep_max():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.timer("explore.wall_s").add(1.0)
    b.timer("explore.wall_s").add(2.5)
    b.timer("explore.wall_s").add(0.5)
    a.merge(b.snapshot())
    t = a.timer("explore.wall_s")
    assert t.count == 3
    assert t.total_s == pytest.approx(4.0)
    assert t.max_s == pytest.approx(2.5)


def test_merge_is_associative_on_counters_and_histograms():
    def reg(values):
        r = MetricsRegistry()
        for v in values:
            r.inc("c", v)
            r.observe("h", v)
        return r

    left = reg([1, 2])
    left.merge(reg([3]).snapshot())
    left.merge(reg([4, 5]).snapshot())
    right = reg([1, 2, 3, 4, 5])
    assert left.snapshot() == right.snapshot()


def test_merge_empty_snapshot_is_identity():
    a = MetricsRegistry()
    a.inc("c", 2)
    before = a.snapshot()
    a.merge(MetricsRegistry().snapshot())
    assert a.snapshot() == before


def test_type_conflict_raises():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.inc("name", 1)  # counter in a
    b.set_gauge("name", 2.0)  # gauge in b
    with pytest.raises(TypeError, match="already registered"):
        a.merge(b.snapshot())


def test_unknown_type_tag_raises():
    a = MetricsRegistry()
    with pytest.raises(ValueError, match="unknown type"):
        a.merge({"weird": {"type": "sketch", "value": 1}})


def test_merge_round_trips_through_json():
    import json

    b = MetricsRegistry()
    b.inc("c", 3)
    b.observe("h", 42)
    b.set_gauge("g", 7.0)
    b.timer("t").add(0.25)
    # snapshots travel over the worker pipe as JSON — string bucket
    # keys must merge identically to in-memory ones
    wire = json.loads(json.dumps(b.snapshot()))
    a, direct = MetricsRegistry(), MetricsRegistry()
    a.merge(wire)
    direct.merge(b.snapshot())
    assert a.snapshot() == direct.snapshot()


def test_merge_empty_registry_into_populated_is_identity():
    a = MetricsRegistry()
    a.inc("explore.expansions", 5)
    a.set_gauge("explore.peak_rss_bytes", 42)
    a.observe("explore.frontier_size", 7)
    before = a.snapshot()
    a.merge(MetricsRegistry().snapshot())
    assert a.snapshot() == before


def test_partial_snapshot_leaves_unrelated_instruments_intact():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.inc("explore.expansions", 5)
    a.set_gauge("explore.peak_rss_bytes", 42)
    b.inc("explore.edges", 3)  # disjoint instrument set
    a.merge(b.snapshot())
    assert a.value("explore.expansions") == 5
    assert a.value("explore.peak_rss_bytes") == 42
    assert a.value("explore.edges") == 3
