"""Crash recovery: a killed server resumes its jobs from checkpoints.

The durable pieces are the pending-job record (written before a job
starts) and the job's periodic snapshot.  These tests build exactly the
disk state a SIGKILLed server leaves behind — a pending record plus a
genuinely mid-run checkpoint — hand it to a fresh server, and assert
recovery completes the job with the result a never-killed server would
have produced.  (The CI serve-smoke job does the same with a real
``kill -9`` across processes.)
"""

from __future__ import annotations

import asyncio
import os

from repro.bench import result_digest
from repro.explore import explore
from repro.programs.corpus import CORPUS
from repro.resilience.checkpoint import Checkpointer
from repro.serve import ReproServer, ResultStore, ServeOptions, keys

PROGRAM = {"kind": "corpus", "name": "philosophers_3"}
OPTIONS = {"policy": "stubborn"}


def _interrupted_store(tmp_path) -> tuple[ResultStore, str, str]:
    """A store in exactly the state a server killed mid-job leaves:
    pending record + a mid-exploration snapshot, no result."""
    program = CORPUS["philosophers_3"]()
    options = keys.options_from_request(OPTIONS)
    key = keys.store_key(program, options)
    store = ResultStore(str(tmp_path / "store"))
    store.record_pending(key, {
        "schema": "repro.serve.job/1",
        "key": key,
        "program": PROGRAM,
        "options": OPTIONS,
    })
    # run the actual engine, stopping right after the first snapshot —
    # the checkpoint is genuinely mid-run, not synthetic
    cp = Checkpointer(store.checkpoint_path(key), every=5, stop_after=1)
    partial = explore(program, options=options, checkpointer=cp)
    assert partial.stats.truncated
    assert partial.stats.truncation_reason == "interrupted"
    assert os.path.exists(store.checkpoint_path(key))

    clean = explore(CORPUS["philosophers_3"](), options=options)
    return store, key, result_digest(clean)


def test_restarted_server_resumes_and_completes(tmp_path):
    store, key, clean_digest = _interrupted_store(tmp_path)

    async def main():
        server = ReproServer(store, ServeOptions(checkpoint_every=50))
        recovered = server.recover()
        assert recovered == 1
        job = server._jobs[key]
        response = await asyncio.shield(job.future)
        return server, response

    server, response = asyncio.run(main())
    assert response["ok"]
    assert response["result_digest"] == clean_digest
    # the job really continued from the snapshot instead of restarting
    assert response["summary"]["resumed"] is True
    assert server.counters["serve.recovered"] == 1
    # the result is durable and the job bookkeeping is gone
    assert store.get_result(key)["result_digest"] == clean_digest
    assert store.pending_jobs() == []


def test_resubmit_after_recovery_is_a_store_hit(tmp_path):
    store, key, clean_digest = _interrupted_store(tmp_path)

    async def main():
        server = ReproServer(store, ServeOptions(checkpoint_every=50))
        server.recover()
        await asyncio.shield(server._jobs[key].future)
        return await server.handle_request(
            {"op": "submit", "program": PROGRAM, "options": OPTIONS}
        )

    response = asyncio.run(main())
    assert response["ok"] and response["cached"]
    assert response["result_digest"] == clean_digest


def test_recover_clears_already_finished_jobs(tmp_path):
    """A pending record whose result actually landed (crash between
    put_result and clear_pending) is cleared, not re-run."""
    store, key, clean_digest = _interrupted_store(tmp_path)
    store.put_result(key, {"result_digest": clean_digest,
                           "summary": {}, "outcomes": []})

    async def main():
        server = ReproServer(store)
        return server.recover(), server

    recovered, server = asyncio.run(main())
    assert recovered == 0
    assert store.pending_jobs() == []
    assert server.counters["serve.recovered"] == 0


def test_recover_drops_unparseable_job_records(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    store.record_pending("deadbeef", {
        "schema": "repro.serve.job/1",
        "key": "deadbeef",
        "program": {"kind": "corpus", "name": "gone_from_corpus"},
        "options": {},
    })

    async def main():
        server = ReproServer(store)
        return server.recover()

    assert asyncio.run(main()) == 0
    assert store.pending_jobs() == []  # dropped, not retried forever


def test_recovery_survives_corrupt_checkpoint(tmp_path):
    """Recovery with a damaged snapshot re-explores cold instead of
    failing the job — degraded, never wrong."""
    store, key, clean_digest = _interrupted_store(tmp_path)
    path = store.checkpoint_path(key)
    blob = open(path, "rb").read()
    with open(path, "wb") as fh:
        fh.write(blob[: len(blob) // 3])

    async def main():
        server = ReproServer(store, ServeOptions(checkpoint_every=50))
        server.recover()
        return await asyncio.shield(server._jobs[key].future)

    response = asyncio.run(main())
    assert response["ok"]
    assert response["result_digest"] == clean_digest
    assert response["summary"]["resumed"] is False
    assert response["summary"]["resume_failed"] is True
