"""Request identity and the warm-cache import gate."""

from __future__ import annotations

import pytest

from repro.explore import ExploreOptions, explore
from repro.explore.memo import ExpandCache
from repro.lang import parse_program
from repro.programs.corpus import CORPUS
from repro.serve import keys
from repro.util.errors import ServeError

COUNTER = """
var lock = 0; var count = 0;
func worker() {
    a: acquire(lock);
    b: count = count + 1;
    c: release(lock);
}
func main() {
    cobegin
    { w1: worker(); }
    { w2: worker(); }
}
"""

COUNTER_EDITED = COUNTER.replace("count + 1", "count + 2")


# --------------------------------------------------------------------------
# options_from_request
# --------------------------------------------------------------------------


def test_options_defaults_and_coercion():
    opts = keys.options_from_request(
        {"policy": "stubborn", "coarsen": True, "max_configs": 100}
    )
    assert opts.policy == "stubborn"
    assert opts.coarsen is True
    assert opts.max_configs == 100
    assert opts.backend == "serial"


def test_options_unknown_key_rejected():
    with pytest.raises(ServeError, match="unknown option"):
        keys.options_from_request({"polciy": "full"})


def test_options_bad_value_rejected():
    with pytest.raises(ServeError, match="cannot coerce"):
        keys.options_from_request({"max_configs": "lots"})


def test_options_bad_policy_rejected():
    with pytest.raises(ServeError, match="unknown policy"):
        keys.options_from_request({"policy": "yolo"})


def test_options_not_a_dict_rejected():
    with pytest.raises(ServeError, match="must be an object"):
        keys.options_from_request([1, 2])


# --------------------------------------------------------------------------
# store and cache keys
# --------------------------------------------------------------------------


def test_store_key_stable_and_sensitive():
    prog = parse_program(COUNTER)
    opts = keys.options_from_request({"policy": "stubborn"})
    k1 = keys.store_key(prog, opts)
    assert k1 == keys.store_key(parse_program(COUNTER), opts)
    # different program or different non-budget options -> different key
    assert k1 != keys.store_key(parse_program(COUNTER_EDITED), opts)
    assert k1 != keys.store_key(
        prog, keys.options_from_request({"policy": "full"})
    )


def test_store_key_ignores_budgets():
    prog = parse_program(COUNTER)
    a = keys.options_from_request({"policy": "stubborn"})
    b = keys.options_from_request(
        {"policy": "stubborn", "max_configs": 7, "time_limit_s": 1.0}
    )
    assert keys.store_key(prog, a) == keys.store_key(prog, b)


def test_cache_key_survives_light_edits():
    """The cache file is keyed by program *shape*, so an edited body
    still finds it (the import gate then filters entries)."""
    opts = keys.options_from_request({"policy": "stubborn"})
    k1 = keys.cache_key(parse_program(COUNTER), opts)
    k2 = keys.cache_key(parse_program(COUNTER_EDITED), opts)
    assert k1 == k2
    # expansion-relevant options split the cache family
    coarse = keys.options_from_request({"policy": "stubborn", "coarsen": True})
    assert k1 != keys.cache_key(parse_program(COUNTER), coarse)


# --------------------------------------------------------------------------
# the import gate
# --------------------------------------------------------------------------


def _document(source: str) -> dict:
    prog = parse_program(source)
    result = explore(prog, options=ExploreOptions(policy="full"))
    assert not result.stats.truncated
    # re-run through a caller-owned cache so there is state to export
    cache = ExpandCache()
    explore(prog, options=ExploreOptions(policy="full"), expand_cache=cache)
    return keys.cache_document(prog, cache.export_state())


def test_keep_predicate_same_program_keeps_everything():
    doc = _document(COUNTER)
    prog = parse_program(COUNTER)
    keep = keys.keep_predicate(doc, prog)
    assert keep is not None
    cache = ExpandCache()
    imported = cache.load_state(doc["state"], keep=keep)
    assert imported > 0


def test_keep_predicate_rejects_wrong_schema_and_globals():
    doc = _document(COUNTER)
    prog = parse_program(COUNTER)
    assert keys.keep_predicate({"schema": "other/1"}, prog) is None
    renamed = COUNTER.replace("var count;", "var tally;").replace(
        "count", "tally"
    )
    assert keys.keep_predicate(doc, parse_program(renamed)) is None


def test_keep_predicate_filters_edited_function_closure():
    """Entries whose process could execute the edited function are
    dropped; the rest import — and the warm run stays exact."""
    doc = _document(COUNTER)
    edited = parse_program(COUNTER_EDITED)
    keep = keys.keep_predicate(doc, edited)
    assert keep is not None
    cache = ExpandCache()
    imported = cache.load_state(doc["state"], keep=keep)
    # every frame stack in this program reaches worker() -> main()'s
    # closure includes the edit, so nothing may survive the gate
    assert imported == 0


def test_warm_start_differential_after_edit():
    """End to end: exploring the edited program with an
    old-program-seeded cache produces exactly the cold result."""
    doc = _document(COUNTER)
    edited = parse_program(COUNTER_EDITED)
    cold = explore(edited, options=ExploreOptions(policy="full"))
    cache = ExpandCache()
    keep = keys.keep_predicate(doc, edited)
    if keep is not None:
        cache.load_state(doc["state"], keep=keep)
    warm = explore(
        edited, options=ExploreOptions(policy="full"), expand_cache=cache
    )
    assert warm.final_stores() == cold.final_stores()
    assert warm.graph.configs == cold.graph.configs
    assert warm.graph.edges == cold.graph.edges


def test_warm_start_differential_same_program():
    """Same program: the import is allowed, hits are real, and the
    graph is still bit-identical."""
    prog_name = "philosophers_3"
    prog = CORPUS[prog_name]()
    cold = explore(prog, options=ExploreOptions(policy="stubborn"))
    cache = ExpandCache()
    explore(
        prog, options=ExploreOptions(policy="stubborn"), expand_cache=cache
    )
    doc = keys.cache_document(prog, cache.export_state())

    fresh_prog = CORPUS[prog_name]()
    keep = keys.keep_predicate(doc, fresh_prog)
    assert keep is not None
    warm_cache = ExpandCache()
    assert warm_cache.load_state(doc["state"], keep=keep) > 0
    warm = explore(
        fresh_prog,
        options=ExploreOptions(policy="stubborn"),
        expand_cache=warm_cache,
    )
    assert warm.final_stores() == cold.final_stores()
    assert warm.graph.configs == cold.graph.configs


def test_call_graph_dynamic_detection():
    dynamic_src = """
    var x = 0;
    func helper() { h: x = 1; }
    func main() {
        var f = 0;
        s: f = helper;
        c: f();
    }
    """
    try:
        prog = parse_program(dynamic_src)
    except Exception:
        pytest.skip("language has no first-class function syntax")
    _, dynamic = keys.call_graph(prog)
    assert dynamic


def test_schedule_options_defaults_and_normalization():
    from repro.schedules.canonical import DEFAULT_MAX_PATHS, DEFAULT_MAX_SCHEDULES

    out = keys.schedule_options_from_request(None)
    assert out == {
        "sample": None,
        "seed": 0,
        "max_paths": DEFAULT_MAX_PATHS,
        "max_schedules": DEFAULT_MAX_SCHEDULES,
    }
    # spelled-out defaults normalize to the same dict (hence same key)
    assert keys.schedule_options_from_request({"seed": 0}) == out
    assert keys.schedule_options_from_request({"sample": "8"})["sample"] == 8


def test_schedule_options_rejections():
    with pytest.raises(ServeError, match="unknown schedules option"):
        keys.schedule_options_from_request({"smaple": 4})
    with pytest.raises(ServeError, match="cannot coerce"):
        keys.schedule_options_from_request({"seed": "xyz"})
    with pytest.raises(ServeError, match="sample must be >= 1"):
        keys.schedule_options_from_request({"sample": 0})
    with pytest.raises(ServeError, match=">= 1"):
        keys.schedule_options_from_request({"max_paths": 0})
    with pytest.raises(ServeError, match="must be an object"):
        keys.schedule_options_from_request([1])


def test_schedules_key_distinct_from_store_key_and_seed_sensitive():
    program = CORPUS["fig2_shasha_snir"]()
    options = keys.options_from_request({"policy": "stubborn", "coarsen": True})
    sched = keys.schedule_options_from_request({"sample": 4, "seed": 1})
    k = keys.schedules_key(program, options, sched)
    assert k != keys.store_key(program, options)
    assert k == keys.schedules_key(program, options, dict(sched))
    other_seed = keys.schedule_options_from_request({"sample": 4, "seed": 2})
    assert k != keys.schedules_key(program, options, other_seed)
    exhaustive = keys.schedule_options_from_request(None)
    assert k != keys.schedules_key(program, options, exhaustive)
