"""Fault drills for the analysis service.

Contract under every drill: the client gets a correct result, a clean
typed error, or a resumable checkpoint — never a wrong answer and never
a hang.  Three failure points (see :mod:`repro.resilience.chaos`):

``serve-worker-kill``
    a job worker hard-exits (OOM kill) — the server must restart it
    from its checkpoint, transparently;
``store-io``
    durable writes fail mid-file (disk full/dying) — requests still
    succeed, the store degrades to miss behavior;
``store-corrupt``
    writes land bit-rotted — the read path must quarantine, re-run,
    and never serve the damaged payload.
"""

from __future__ import annotations

import asyncio

from repro.bench import result_digest
from repro.explore import ExploreOptions, explore
from repro.programs.corpus import CORPUS
from repro.resilience import chaos
from repro.serve import ReproServer, ResultStore, ServeOptions

PROGRAM = {"kind": "corpus", "name": "philosophers_3"}
OPTIONS = {"policy": "stubborn", "coarsen": True}
SUBMIT = {"op": "submit", "program": PROGRAM, "options": OPTIONS}


def _clean_digest() -> str:
    result = explore(
        CORPUS["philosophers_3"](),
        options=ExploreOptions(policy="stubborn", coarsen=True),
    )
    return result_digest(result)


def _server(tmp_path, **kw) -> ReproServer:
    kw.setdefault("checkpoint_every", 20)
    return ReproServer(ResultStore(str(tmp_path / "store")), ServeOptions(**kw))


def _ask(server, req=SUBMIT) -> dict:
    async def main():
        return await asyncio.wait_for(server.handle_request(dict(req)), 120)

    return asyncio.run(main())


# --------------------------------------------------------------------------
# serve-worker-kill
# --------------------------------------------------------------------------


def test_killed_worker_restarts_and_answers_correctly(tmp_path):
    """One OOM-killed worker is invisible to the client: the job
    restarts (resuming its checkpoint) and the answer is exact."""
    server = _server(tmp_path)
    # shared=True: the point fires inside the forked worker, and the
    # restarted worker must draw from the same (now empty) budget
    with chaos.injected("serve-worker-kill", shared=True, times=1) as inj:
        response = _ask(server)
    assert inj.armed_fired("serve-worker-kill") == 1
    assert response["ok"]
    assert response["result_digest"] == _clean_digest()
    assert server.counters["serve.worker_restarts"] == 1
    assert server.store.pending_jobs() == []


def test_kill_every_attempt_yields_typed_resumable_error(tmp_path):
    """A job whose worker dies on every attempt exhausts the restart
    budget and fails *cleanly*: typed error, checkpoint kept, and a
    later drill-free resubmit completes."""
    server = _server(tmp_path, max_restarts=1)
    with chaos.injected("serve-worker-kill", shared=True, times=-1):
        response = _ask(server)
    assert response["ok"] is False
    assert response["error"]["type"] == "worker-failed"
    assert response["resumable"] is True
    assert server.counters["serve.jobs_failed"] == 1
    # the pending record survives for recovery...
    assert len(server.store.pending_jobs()) == 1
    # ...and with the fault gone, the same server completes the job
    retry = _ask(server)
    assert retry["ok"]
    assert retry["result_digest"] == _clean_digest()
    assert server.store.pending_jobs() == []


# --------------------------------------------------------------------------
# store-io
# --------------------------------------------------------------------------


def test_store_io_fault_degrades_to_miss_not_failure(tmp_path):
    """A dying disk during result persistence must not fail the
    request — and the next identical request simply re-explores."""
    server = _server(tmp_path)
    with chaos.injected("store-io", times=-1):
        r1 = _ask(server)
    assert r1["ok"]
    assert r1["result_digest"] == _clean_digest()
    assert server.store.put_failures > 0
    # nothing (possibly partial) was persisted
    assert server.store.get_result(r1["key"]) is None
    # disk healthy again: re-submit re-runs and persists normally
    r2 = _ask(server)
    assert r2["ok"] and r2["cached"] is False
    assert r2["result_digest"] == r1["result_digest"]
    r3 = _ask(server)
    assert r3["cached"] is True


# --------------------------------------------------------------------------
# store-corrupt
# --------------------------------------------------------------------------


def test_store_corrupt_fault_never_serves_damaged_payload(tmp_path):
    """Bit-rot on the way to disk: the corrupted entry is quarantined
    on first read and the job re-runs — the wrong bytes are never in a
    response."""
    server = _server(tmp_path)
    # after=1: skip the pending-record write so the flip lands on the
    # result payload itself
    with chaos.injected("store-corrupt", after=1, times=1):
        r1 = _ask(server)
    assert r1["ok"]
    digest = _clean_digest()
    assert r1["result_digest"] == digest  # response came from the run
    # the stored entry is damaged; the resubmit must detect it,
    # quarantine, and recompute rather than replay garbage
    r2 = _ask(server)
    assert r2["ok"]
    assert r2["cached"] is False
    assert r2["result_digest"] == digest
    assert server.store.quarantined >= 1
    # third time around the (clean) rewrite serves from the store
    r3 = _ask(server)
    assert r3["cached"] is True
    assert r3["result_digest"] == digest
