"""The job server: coalescing, admission control, deadlines, protocol."""

from __future__ import annotations

import asyncio
import json
import socket

import pytest

from repro.bench import result_digest
from repro.explore import ExploreOptions, explore
from repro.programs.corpus import CORPUS
from repro.serve import ReproServer, ResultStore, ServeOptions, request

PHILOSOPHERS = {"kind": "corpus", "name": "philosophers_3"}
OPTIONS = {"policy": "stubborn", "coarsen": True}


def _submit(program=PHILOSOPHERS, options=OPTIONS, **extra) -> dict:
    req = {"op": "submit", "program": program, "options": dict(options)}
    req.update(extra)
    return req


def _server(tmp_path, **kw) -> ReproServer:
    kw.setdefault("checkpoint_every", 50)
    return ReproServer(ResultStore(str(tmp_path / "store")), ServeOptions(**kw))


def _run(coro):
    return asyncio.run(coro)


def _clean_digest() -> str:
    result = explore(
        CORPUS["philosophers_3"](),
        options=ExploreOptions(policy="stubborn", coarsen=True),
    )
    return result_digest(result)


# --------------------------------------------------------------------------
# the submit path
# --------------------------------------------------------------------------


def test_cold_submit_then_store_hit(tmp_path):
    server = _server(tmp_path)

    async def main():
        r1 = await server.handle_request(_submit())
        r2 = await server.handle_request(_submit())
        return r1, r2

    r1, r2 = _run(main())
    assert r1["ok"] and not r1["cached"]
    assert r2["ok"] and r2["cached"]
    # warm answer is byte-identical to the cold one — and to a direct
    # in-process exploration
    assert r1["result_digest"] == r2["result_digest"] == _clean_digest()
    assert r1["summary"] == r2["summary"]
    assert r1["outcomes"] == r2["outcomes"]
    assert server.store.hits == 1
    assert server.counters["serve.jobs_completed"] == 1


def test_budget_fields_share_a_store_entry(tmp_path):
    """Budgets are not part of the result's identity: a complete run
    stored under one budget answers a request with another."""
    server = _server(tmp_path)

    async def main():
        r1 = await server.handle_request(
            _submit(options=dict(OPTIONS, max_configs=100_000))
        )
        r2 = await server.handle_request(
            _submit(options=dict(OPTIONS, max_configs=999))
        )
        return r1, r2

    r1, r2 = _run(main())
    assert not r1["cached"] and r2["cached"]
    assert r1["result_digest"] == r2["result_digest"]


def test_identical_inflight_submits_coalesce(tmp_path):
    server = _server(tmp_path)

    async def main():
        return await asyncio.gather(
            server.handle_request(_submit()),
            server.handle_request(_submit()),
            server.handle_request(_submit()),
        )

    rs = _run(main())
    assert all(r["ok"] for r in rs)
    assert len({r["result_digest"] for r in rs}) == 1
    # one exploration served all three clients
    assert server.counters["serve.jobs_completed"] == 1
    assert server.counters["serve.coalesced"] == 2


def test_bounded_admission_sheds_load(tmp_path):
    server = _server(tmp_path, max_pending=1)

    async def main():
        first = asyncio.ensure_future(server.handle_request(_submit()))
        while not server._jobs:  # admitted, still running
            await asyncio.sleep(0.01)
        # a *different* request past the bound is shed, not queued
        other = await server.handle_request(
            _submit(options={"policy": "full"})
        )
        # an *identical* request coalesces instead — no capacity used
        same = await server.handle_request(_submit())
        return await first, other, same

    r1, other, same = _run(main())
    assert r1["ok"] and same["ok"]
    assert other["ok"] is False
    assert other["overloaded"] is True
    assert other["error"]["type"] == "overloaded"
    assert server.counters["serve.shed"] == 1


def test_deadline_truncates_gracefully_and_is_not_stored(tmp_path):
    server = _server(tmp_path)

    async def main():
        r = await server.handle_request(
            _submit(
                program={"kind": "corpus", "name": "philosophers_3"},
                options={"policy": "full"},
                deadline_s=1e-4,
            )
        )
        return r

    r = _run(main())
    assert r["ok"]  # a truncated answer, not a hang or an error
    assert r["summary"]["truncated"] is True
    assert r["summary"]["truncation_reason"] == "time"
    # deadline-truncated results must not poison the store: the key
    # ignores budgets, so a cached partial answer would be wrong
    assert server.store.puts == 0
    key = r["key"]
    assert server.store.get_result(key) is None


def test_bad_requests_get_typed_errors(tmp_path):
    server = _server(tmp_path)

    async def main():
        return (
            await server.handle_request({"op": "submit", "program": {
                "kind": "source", "text": "func main( {"}}),
            await server.handle_request(_submit(options={"polciy": "full"})),
            await server.handle_request({"op": "submit", "program": {
                "kind": "corpus", "name": "no_such_program"}}),
            await server.handle_request({"op": "frobnicate"}),
            await server.handle_request({"op": "submit", "program": {
                "kind": "corpus", "name": "philosophers_3"},
                "deadline_s": -1}),
        )

    bad_src, bad_opt, bad_corpus, bad_op, bad_deadline = _run(main())
    for r in (bad_src, bad_opt, bad_corpus, bad_op, bad_deadline):
        assert r["ok"] is False
        assert r["error"]["type"] and r["error"]["message"]
    assert "unknown option" in bad_opt["error"]["message"]
    assert bad_op["error"]["type"] == "bad-request"
    # nothing was admitted or recorded for malformed requests
    assert server.counters["serve.jobs_completed"] == 0
    assert server.store.pending_jobs() == []


def test_pending_record_cleared_after_completion(tmp_path):
    server = _server(tmp_path)

    async def main():
        return await server.handle_request(_submit())

    r = _run(main())
    assert r["ok"]
    assert server.store.pending_jobs() == []


# --------------------------------------------------------------------------
# the socket layer
# --------------------------------------------------------------------------


def test_socket_round_trip(tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    address = str(tmp_path / "serve.sock")

    async def main():
        server = ReproServer(store, ServeOptions(checkpoint_every=50))
        serving = asyncio.ensure_future(server.serve(address))
        loop = asyncio.get_running_loop()
        for _ in range(500):
            try:
                ping = await loop.run_in_executor(
                    None, lambda: request(address, {"op": "ping"}, timeout=5)
                )
                break
            except Exception:
                await asyncio.sleep(0.01)
        r1 = await loop.run_in_executor(
            None, lambda: request(address, _submit(), timeout=120)
        )
        r2 = await loop.run_in_executor(
            None, lambda: request(address, _submit(), timeout=120)
        )
        stats = await loop.run_in_executor(
            None, lambda: request(address, {"op": "stats"}, timeout=5)
        )
        await loop.run_in_executor(
            None, lambda: request(address, {"op": "shutdown"}, timeout=5)
        )
        await serving
        return ping, r1, r2, stats

    ping, r1, r2, stats = _run(main())
    assert ping["ok"] and ping["protocol"].startswith("repro.serve/")
    assert r1["ok"] and not r1["cached"]
    assert r2["ok"] and r2["cached"]
    assert r1["result_digest"] == r2["result_digest"]
    assert stats["store"]["serve.store_hits"] == 1


def test_malformed_json_line_gets_error_response(tmp_path):
    address = str(tmp_path / "serve.sock")
    store = ResultStore(str(tmp_path / "store"))

    async def main():
        server = ReproServer(store)
        serving = asyncio.ensure_future(server.serve(address))
        loop = asyncio.get_running_loop()

        def raw_exchange():
            conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            conn.settimeout(5)
            for _ in range(500):
                try:
                    conn.connect(address)
                    break
                except OSError:
                    import time

                    time.sleep(0.01)
            conn.sendall(b"this is not json\n")
            data = conn.recv(65536)
            conn.close()
            return json.loads(data)

        response = await loop.run_in_executor(None, raw_exchange)
        await loop.run_in_executor(
            None, lambda: request(address, {"op": "shutdown"}, timeout=5)
        )
        await serving
        return response

    response = _run(main())
    assert response["ok"] is False
    assert response["error"]["type"] == "bad-request"
