"""The durable store: atomicity, checksums, quarantine, fault drills.

The store's contract is that no disk state — truncated, bit-rotted, or
half-written — can fail a request: reads degrade to misses, writes
degrade to cache-miss behavior, and damaged artifacts are moved to
quarantine so they cannot bite twice.
"""

from __future__ import annotations

import json
import os
import pickle

import pytest

from repro.resilience import chaos
from repro.serve.store import (
    STORE_SCHEMA,
    ResultStore,
    read_cache_file,
)
from repro.util.errors import ServeError

PAYLOAD = {
    "result_digest": "abc123",
    "summary": {"configs": 10, "truncated": False},
    "outcomes": ["{'x': 1}"],
}


def _store(tmp_path) -> ResultStore:
    return ResultStore(str(tmp_path / "store"))


# --------------------------------------------------------------------------
# results
# --------------------------------------------------------------------------


def test_result_round_trip(tmp_path):
    store = _store(tmp_path)
    assert store.get_result("k1") is None  # miss
    assert store.put_result("k1", PAYLOAD)
    got = store.get_result("k1")
    assert got == PAYLOAD
    assert store.hits == 1 and store.misses == 1 and store.puts == 1


def test_manifest_schema_guard(tmp_path):
    root = str(tmp_path / "store")
    ResultStore(root)
    with open(os.path.join(root, "manifest.json")) as fh:
        assert json.load(fh)["schema"] == STORE_SCHEMA
    # an incompatible store directory is refused, not misread
    with open(os.path.join(root, "manifest.json"), "w") as fh:
        json.dump({"schema": "repro.store/99"}, fh)
    with pytest.raises(ServeError, match="schema"):
        ResultStore(root)


def test_corrupt_result_quarantined_not_raised(tmp_path):
    store = _store(tmp_path)
    store.put_result("k1", PAYLOAD)
    entry = os.path.join(store.root, "entries", "k1", "result.pkl")
    with open(entry, "r+b") as fh:
        fh.seek(10)
        fh.write(b"\xff\xff\xff\xff")
    assert store.get_result("k1") is None  # checksum mismatch -> miss
    assert store.quarantined == 1
    assert not os.path.exists(os.path.join(store.root, "entries", "k1"))
    assert os.listdir(os.path.join(store.root, "quarantine"))
    # the store still works for fresh writes under the same key
    assert store.put_result("k1", PAYLOAD)
    assert store.get_result("k1") == PAYLOAD


def test_truncated_result_file_quarantined(tmp_path):
    store = _store(tmp_path)
    store.put_result("k1", PAYLOAD)
    entry = os.path.join(store.root, "entries", "k1", "result.pkl")
    blob = open(entry, "rb").read()
    with open(entry, "wb") as fh:
        fh.write(blob[: len(blob) // 2])
    assert store.get_result("k1") is None
    assert store.quarantined == 1


def test_bad_meta_json_quarantined(tmp_path):
    store = _store(tmp_path)
    store.put_result("k1", PAYLOAD)
    meta = os.path.join(store.root, "entries", "k1", "meta.json")
    with open(meta, "w") as fh:
        fh.write("{not json")
    assert store.get_result("k1") is None
    assert store.quarantined == 1


def test_unpicklable_payload_fails_put_cleanly(tmp_path):
    store = _store(tmp_path)
    assert store.put_result("k1", {"bad": lambda: None}) is False
    assert store.put_failures == 1
    assert store.get_result("k1") is None  # no half-entry visible


# --------------------------------------------------------------------------
# warm caches
# --------------------------------------------------------------------------


def test_cache_round_trip(tmp_path):
    store = _store(tmp_path)
    doc = {"schema": "x/1", "state": {"entries": [1, 2, 3]}}
    assert store.get_cache("c1") is None
    assert store.put_cache("c1", doc)
    assert store.get_cache("c1") == doc
    assert store.cache_hits == 1 and store.cache_misses == 1


def test_corrupt_cache_quarantined(tmp_path):
    store = _store(tmp_path)
    store.put_cache("c1", {"schema": "x/1"})
    path = store._cache_path("c1")
    with open(path, "r+b") as fh:
        fh.seek(os.path.getsize(path) - 4)
        fh.write(b"\x00\x00\x00\x00")
    assert store.get_cache("c1") is None
    assert store.quarantined == 1
    assert not os.path.exists(path)


def test_read_cache_file_standalone_deletes_damage(tmp_path):
    path = str(tmp_path / "c.pkl")
    with open(path, "wb") as fh:
        fh.write(b"deadbeef\nnot a pickle")
    assert read_cache_file(path) is None
    assert not os.path.exists(path)


# --------------------------------------------------------------------------
# pending jobs
# --------------------------------------------------------------------------


def test_pending_jobs_round_trip(tmp_path):
    store = _store(tmp_path)
    record = {"key": "k1", "program": {"kind": "corpus", "name": "x"}}
    assert store.record_pending("k1", record)
    assert store.pending_jobs() == [("k1", record)]
    store.clear_pending("k1")
    assert store.pending_jobs() == []
    assert not os.path.exists(store.job_dir("k1"))


def test_bad_pending_record_quarantined(tmp_path):
    store = _store(tmp_path)
    store.record_pending("good", {"key": "good"})
    os.makedirs(store.job_dir("bad"), exist_ok=True)
    with open(os.path.join(store.job_dir("bad"), "job.json"), "w") as fh:
        fh.write("{broken")
    assert store.pending_jobs() == [("good", {"key": "good"})]
    assert store.quarantined == 1


def test_checkpoint_debris_without_record_skipped(tmp_path):
    store = _store(tmp_path)
    os.makedirs(store.job_dir("orphan"), exist_ok=True)
    open(store.checkpoint_path("orphan"), "wb").close()
    assert store.pending_jobs() == []


# --------------------------------------------------------------------------
# fault drills
# --------------------------------------------------------------------------


def test_store_io_fault_degrades_put_atomically(tmp_path):
    """A disk dying mid-write (the ``store-io`` drill) fails the put
    cleanly: False, counted, no partial entry, previous value intact."""
    store = _store(tmp_path)
    assert store.put_result("k1", PAYLOAD)
    new_payload = dict(PAYLOAD, result_digest="def456")
    with chaos.injected("store-io", times=-1):
        assert store.put_result("k1", new_payload) is False
    assert store.put_failures == 1
    # the old entry survived the failed overwrite, bit for bit
    assert store.get_result("k1") == PAYLOAD
    # and no temp debris was promoted or left behind
    entry_dir = os.path.join(store.root, "entries", "k1")
    assert sorted(os.listdir(entry_dir)) == ["meta.json", "result.pkl"]


def test_store_io_mid_file_fault_leaves_no_entry(tmp_path):
    """Failing after N low-level writes (not at the first byte) still
    leaves the store consistent — the rename never happened."""
    store = _store(tmp_path)
    big = dict(PAYLOAD, outcomes=["{'x': %d}" % i for i in range(10_000)])
    with chaos.injected("store-io", after=1, times=-1):
        assert store.put_result("k1", big) is False
    assert store.get_result("k1") is None
    assert store.quarantined == 0  # a clean miss, not damage


def test_store_corrupt_fault_caught_by_checksum(tmp_path):
    """Silent bit-rot at write time (the ``store-corrupt`` drill) lands
    a mismatching entry that the read path quarantines — the client
    sees a miss, never a wrong payload."""
    store = _store(tmp_path)
    with chaos.injected("store-corrupt", times=1):
        assert store.put_result("k1", PAYLOAD)  # write "succeeds"...
    got = store.get_result("k1")
    assert got is None  # ...but can never be served damaged
    assert store.quarantined == 1


def test_store_corrupt_fault_on_cache_file(tmp_path):
    store = _store(tmp_path)
    with chaos.injected("store-corrupt", times=1):
        assert store.put_cache("c1", {"schema": "x/1", "blob": list(range(100))})
    assert store.get_cache("c1") is None
    assert store.quarantined == 1


def test_meta_is_the_commit_point(tmp_path):
    """result.pkl without meta.json (crash between the two writes) is
    invisible — has_result and get_result both say miss."""
    store = _store(tmp_path)
    entry = os.path.join(store.root, "entries", "k1")
    os.makedirs(entry)
    with open(os.path.join(entry, "result.pkl"), "wb") as fh:
        pickle.dump(PAYLOAD, fh)
    assert not store.has_result("k1")
    assert store.get_result("k1") is None
