"""Shared fixtures for the analysis-service suite."""

from __future__ import annotations

import pytest

from repro.resilience import chaos


@pytest.fixture(autouse=True)
def no_leaked_injector():
    assert chaos.active() is None
    yield
    leaked = chaos.active() is not None
    chaos.uninstall()
    assert not leaked, "test left a chaos injector installed"
