"""The ``repro.serve/2`` telemetry plane: followed submits, per-job
live state, heartbeat stall detection, and the SIGKILL drill."""

from __future__ import annotations

import asyncio
import os

from repro.resilience import chaos
from repro.serve import (
    PROTOCOL,
    ReproServer,
    ResultStore,
    ServeOptions,
    request,
    request_stream,
)

PHILOSOPHERS = {"kind": "corpus", "name": "philosophers_3"}
OPTIONS = {"policy": "stubborn", "coarsen": True}


def _submit(**extra) -> dict:
    req = {"op": "submit", "program": PHILOSOPHERS, "options": dict(OPTIONS)}
    req.update(extra)
    return req


async def _serve_and(store_root, coro_fn, **serve_kw):
    """Run a unix-socket server, await ``coro_fn(address, server)``,
    shut the server down, and return the coroutine's result."""
    serve_kw.setdefault("checkpoint_every", 50)
    serve_kw.setdefault("progress_interval_s", 0.01)
    store = ResultStore(str(store_root))
    server = ReproServer(store, ServeOptions(**serve_kw))
    address = str(store_root) + ".sock"
    serving = asyncio.ensure_future(server.serve(address))
    for _ in range(500):
        if os.path.exists(address):
            break
        await asyncio.sleep(0.01)
    loop = asyncio.get_running_loop()
    try:
        return await coro_fn(loop, address, server)
    finally:
        await loop.run_in_executor(None, lambda: request(address, {"op": "shutdown"}))
        await serving


def test_follow_streams_frames_then_identical_final(tmp_path):
    frames: list[dict] = []

    async def scenario(loop, address, server):
        streamed = await loop.run_in_executor(
            None,
            lambda: request_stream(
                address, _submit(), on_frame=lambda o: frames.append(o)
            ),
        )
        # the same request again, without follow: a store hit with the
        # exact same payload (only the cached marker differs)
        plain = await loop.run_in_executor(
            None, lambda: request(address, _submit())
        )
        return streamed, plain

    streamed, plain = asyncio.run(_serve_and(tmp_path / "store", scenario))
    assert streamed["ok"] and not streamed["cached"]
    assert len(frames) >= 2, "expected interleaved progress frames"
    assert all(o["progress"] and o["key"] == streamed["key"] for o in frames)
    phases = [o["frame"]["phase"] for o in frames]
    assert phases[0] == "start" and "done" in phases
    assert all(
        o["frame"]["kind"] == "progress" for o in frames
    )  # no stalls on a clean run
    assert plain["ok"] and plain["cached"]
    assert plain["result_digest"] == streamed["result_digest"]
    assert plain["summary"] == streamed["summary"]
    assert plain["outcomes"] == streamed["outcomes"]


def test_followed_and_plain_runs_agree_across_stores(tmp_path):
    """Streaming must not perturb the job: a followed run on one store
    produces the same digest as a plain run on a fresh store."""

    async def followed(loop, address, server):
        return await loop.run_in_executor(
            None, lambda: request_stream(address, _submit())
        )

    async def plain(loop, address, server):
        return await loop.run_in_executor(
            None, lambda: request(address, _submit())
        )

    a = asyncio.run(_serve_and(tmp_path / "store_a", followed))
    b = asyncio.run(_serve_and(tmp_path / "store_b", plain))
    assert a["ok"] and b["ok"]
    assert a["result_digest"] == b["result_digest"]
    assert a["summary"] == b["summary"]


def test_sigkilled_worker_surfaces_stalled_then_resumes(tmp_path):
    frames: list[dict] = []

    async def scenario(loop, address, server):
        final = await loop.run_in_executor(
            None,
            lambda: request_stream(
                address, _submit(), on_frame=lambda o: frames.append(o)
            ),
        )
        return final, dict(server.counters)

    inj = chaos.FaultInjector()
    # shared=True: the budget spans the forked workers — the first one
    # dies mid-run, the restarted one runs clean
    inj.arm("serve-worker-kill", times=1, shared=True)
    chaos.install(inj)
    try:
        final, counters = asyncio.run(
            _serve_and(tmp_path / "store", scenario, checkpoint_every=10)
        )
    finally:
        chaos.uninstall()
    kinds = [o["frame"]["kind"] for o in frames]
    assert "progress.stalled" in kinds
    assert "progress.resumed" in kinds
    assert kinds.index("progress.stalled") < kinds.index("progress.resumed")
    assert counters["serve.worker_restarts"] == 1
    assert final["ok"], final


def test_quiet_live_worker_stalls_within_a_heartbeat(tmp_path):
    """A worker that is alive but silent longer than ``heartbeat_s``
    surfaces as stalled *without* dying: frames resume afterwards."""
    from repro.programs.philosophers import philosophers_source

    frames: list[dict] = []
    req = {
        "op": "submit",
        "program": {"kind": "source", "text": philosophers_source(5)},
        "options": dict(OPTIONS),
    }

    async def scenario(loop, address, server):
        return await loop.run_in_executor(
            None,
            lambda: request_stream(
                address, req, on_frame=lambda o: frames.append(o)
            ),
        )

    final = asyncio.run(
        _serve_and(
            tmp_path / "store",
            scenario,
            # frames ship rarely; the heartbeat is much tighter — the
            # babysitter must synthesize stalled frames in between
            progress_interval_s=60.0,
            heartbeat_s=0.05,
        )
    )
    assert final["ok"]
    kinds = [o["frame"]["kind"] for o in frames]
    assert "progress.stalled" in kinds
    stalled = next(
        o["frame"] for o in frames if o["frame"]["kind"] == "progress.stalled"
    )
    assert stalled["wall_silence_s"] >= 0.05


def test_stats_exposes_protocol_and_live_jobs(tmp_path):
    seen: dict = {}

    async def scenario(loop, address, server):
        fut = loop.run_in_executor(
            None, lambda: request_stream(address, _submit())
        )
        # sample stats while the job is in flight
        while not server._jobs and not fut.done():
            await asyncio.sleep(0.005)
        while server._jobs:
            stats = await server.handle_request({"op": "stats"})
            for key, job in stats["jobs"].items():
                if job["last"] is not None:
                    seen[key] = job
            await asyncio.sleep(0.01)
        final = await fut
        after = await server.handle_request({"op": "stats"})
        return final, after

    final, after = asyncio.run(_serve_and(tmp_path / "store", scenario))
    assert final["ok"]
    assert after["protocol"] == PROTOCOL == "repro.serve/2"
    assert after["jobs"] == {}  # finished jobs leave the live table
    assert seen, "stats never showed a live job"
    job = seen[final["key"]]
    assert job["followers"] >= 1
    assert job["last"]["schema"].startswith("repro.progress/")


def test_plain_one_shot_clients_are_unaffected(tmp_path):
    """A ``/1``-style request (no follow) gets exactly one response
    line even though the worker ships frames to the server."""

    async def scenario(loop, address, server):
        return await loop.run_in_executor(
            None, lambda: request(address, _submit())
        )

    final = asyncio.run(_serve_and(tmp_path / "store", scenario))
    assert final["ok"] and not final["cached"]
    assert "progress" not in final
