"""Store eviction (``repro store gc``): LRU by last-hit timestamp,
age pass before size pass, quarantine/ and jobs/ sacrosanct."""

from __future__ import annotations

import os

from repro.serve.store import ResultStore

PAYLOAD = {
    "result_digest": "abc123",
    "summary": {"configs": 10, "truncated": False},
    "outcomes": ["{'x': 1}"],
}


def _store(tmp_path) -> ResultStore:
    return ResultStore(str(tmp_path / "store"))


def _age(store: ResultStore, key: str, age_s: float, *, now: float) -> None:
    meta = os.path.join(store.root, "entries", key, "meta.json")
    os.utime(meta, (now - age_s, now - age_s))


def test_age_pass_evicts_only_idle_entries(tmp_path):
    store = _store(tmp_path)
    now = 1_000_000.0
    for key in ("old", "fresh"):
        assert store.put_result(key, PAYLOAD)
    _age(store, "old", 3600.0, now=now)
    _age(store, "fresh", 10.0, now=now)
    report = store.gc(max_age_s=60.0, now=now)
    assert report["evicted_entries"] == 1
    assert not store.has_result("old")
    assert store.get_result("fresh") == PAYLOAD


def test_size_pass_evicts_least_recently_hit_first(tmp_path):
    store = _store(tmp_path)
    now = 1_000_000.0
    for i in range(4):
        assert store.put_result(f"k{i}", PAYLOAD)
        _age(store, f"k{i}", 100.0 * (4 - i), now=now)  # k0 oldest
    per_entry = sum(
        os.path.getsize(os.path.join(store.root, "entries", "k0", name))
        for name in os.listdir(os.path.join(store.root, "entries", "k0"))
    )
    report = store.gc(max_bytes=2 * per_entry, now=now)
    assert report["evicted_entries"] == 2
    assert not store.has_result("k0") and not store.has_result("k1")
    assert store.has_result("k2") and store.has_result("k3")
    assert report["kept_items"] == 2
    assert report["kept_bytes"] <= 2 * per_entry


def test_hit_refreshes_the_lru_clock(tmp_path):
    store = _store(tmp_path)
    for key in ("a", "b"):
        assert store.put_result(key, PAYLOAD)
    now = os.path.getmtime(
        os.path.join(store.root, "entries", "a", "meta.json")
    )
    _age(store, "a", 500.0, now=now)
    _age(store, "b", 100.0, now=now)
    # a hit on the older entry makes it the *younger* one
    assert store.get_result("a") == PAYLOAD
    sizes = store.gc(max_bytes=10**9, now=now)  # no-op; measures totals
    store.gc(max_bytes=sizes["kept_bytes"] // 2, now=now)
    assert store.has_result("a")  # survived because the hit refreshed it
    assert not store.has_result("b")


def test_uncommitted_half_entry_is_evicted_first(tmp_path):
    store = _store(tmp_path)
    assert store.put_result("good", PAYLOAD)
    half = os.path.join(store.root, "entries", "half")
    os.makedirs(half)
    with open(os.path.join(half, "result.pkl"), "wb") as fh:
        fh.write(b"partial write, no meta.json commit point")
    report = store.gc(max_bytes=10**9, max_age_s=10**9)
    assert report["evicted_entries"] == 1  # the half entry: mtime 0.0
    assert not os.path.exists(half)
    assert store.has_result("good")


def test_quarantine_and_jobs_are_never_touched(tmp_path):
    store = _store(tmp_path)
    assert store.put_result("victim", PAYLOAD)
    qfile = os.path.join(store.root, "quarantine", "evidence.0")
    with open(qfile, "w") as fh:
        fh.write("corrupt artifact kept as evidence")
    assert store.record_pending("jobkey", {"op": "submit"})
    report = store.gc(max_bytes=0)  # the harshest budget possible
    assert report["evicted_entries"] == 1
    assert os.path.exists(qfile)
    assert [k for k, _ in store.pending_jobs()] == ["jobkey"]


def test_caches_participate_in_both_passes(tmp_path):
    store = _store(tmp_path)
    now = 1_000_000.0
    assert store.put_cache("warm1", {"schema": "x", "data": 1})
    assert store.put_cache("warm2", {"schema": "x", "data": 2})
    old = os.path.join(store.root, "caches", "warm1.pkl")
    os.utime(old, (now - 3600.0, now - 3600.0))
    os.utime(
        os.path.join(store.root, "caches", "warm2.pkl"),
        (now - 5.0, now - 5.0),
    )
    report = store.gc(max_age_s=60.0, now=now)
    assert report["evicted_caches"] == 1
    assert not os.path.exists(old)
    assert store.get_cache("warm2") is not None


def test_evictions_feed_the_counters(tmp_path):
    store = _store(tmp_path)
    now = 1_000_000.0
    for i in range(3):
        store.put_result(f"k{i}", PAYLOAD)
        _age(store, f"k{i}", 3600.0, now=now)
    report = store.gc(max_age_s=60.0, now=now)
    assert report["evicted_entries"] == 3
    assert report["freed_bytes"] > 0
    assert store.evictions == 3
    assert store.counters()["serve.store_evictions"] == 3


def test_gc_without_limits_is_a_no_op(tmp_path):
    store = _store(tmp_path)
    store.put_result("keep", PAYLOAD)
    report = store.gc()
    assert report["evicted_entries"] == 0 and report["evicted_caches"] == 0
    assert store.has_result("keep")
