"""Property: the folded abstract space covers concrete reachability.

Every configuration reached by concrete exploration must be ⊑ the
folded abstract entry with the same control skeleton — the [CC77]
soundness of the abstract semantics, checked end-to-end through
spawn/join, calls, heap allocation and branching.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.absdomain import (
    AbsValueDomain,
    FlatConstDomain,
    IntervalDomain,
    SignDomain,
)
from repro.abstraction import taylor_explore
from repro.explore import explore
from tests.properties.test_reduction_soundness import programs

DOMS = {
    "flat": lambda: AbsValueDomain(FlatConstDomain()),
    "interval": lambda: AbsValueDomain(IntervalDomain()),
    "sign": lambda: AbsValueDomain(SignDomain()),
}


@pytest.mark.parametrize("dom_name", sorted(DOMS))
@given(prog=programs())
@settings(max_examples=25, deadline=None)
def test_taylor_fold_covers_concrete(dom_name, prog):
    folded = taylor_explore(prog, DOMS[dom_name]())
    concrete = explore(prog, "full")
    for cfg in concrete.graph.configs:
        if cfg.fault is None:
            assert folded.covers_config(cfg)


@given(prog=programs())
@settings(max_examples=25, deadline=None)
def test_concrete_terminals_covered(prog):
    folded = taylor_explore(prog, AbsValueDomain(IntervalDomain()))
    concrete = explore(prog, "full")
    terminal_abstract = folded.terminal_states()
    if any(
        concrete.graph.terminal.get(cid) == "terminated"
        for cid in concrete.graph.terminal
    ):
        assert terminal_abstract
