"""Properties of seeded schedule sampling (``repro schedules --sample``).

The sampler is a seeded randomized-order DFS without replacement, so
four properties hold by construction — these tests pin them against
regressions:

* **determinism** — the same seed yields the same sample set, byte for
  byte, across repeated runs and across explorations;
* **soundness** — every sampled class is a member of the exhaustive
  class set (sampling re-orders the walk, it cannot invent classes);
* **monotonicity** — growing the sample budget N with a fixed seed only
  extends the sample (prefix property: the stop check consumes no
  randomness), so class counts and edge coverage are monotone in N;
* **completeness** — with N at least the class count the sample finds
  *every* class; once N strictly exceeds it the walk provably drains
  the whole graph (the target is unreachable), so it reports
  ``exhausted`` and class coverage 1.0.  At exactly N == classes the
  walk stops on collecting the Nth class and cannot know whether more
  classes existed, so coverage honestly stays ``None`` unless the Nth
  class arrived on the walk's final path.
"""

from __future__ import annotations

import pytest

from repro.explore import explore
from repro.programs.corpus import CORPUS
from repro.schedules import dumps_document, generate, schedule_document

SEEDS = range(50)

#: (program, policy, sleep): a few shapes with different class counts.
CASES = (
    ("fig2_shasha_snir", "stubborn", False),
    ("philosophers_3", "stubborn", False),
    ("philosophers_3", "stubborn", True),
    ("deadlock_pair", "full", False),
)


@pytest.fixture(scope="module")
def explored():
    out = {}
    for name, policy, sleep in CASES:
        result = explore(
            CORPUS[name](), policy, coarsen=True, sleep=sleep
        )
        out[(name, policy, sleep)] = (result, generate(result))
    return out


@pytest.mark.parametrize("case", CASES, ids=lambda c: f"{c[0]}-{c[1]}"
                         + ("-sleep" if c[2] else ""))
def test_same_seed_same_sample(case, explored):
    result, full = explored[case]
    n = max(1, full.num_classes // 2)
    for seed in SEEDS:
        a = generate(result, sample=n, seed=seed)
        b = generate(result, sample=n, seed=seed)
        assert dumps_document(schedule_document(a)) == dumps_document(
            schedule_document(b)
        )


@pytest.mark.parametrize("case", CASES, ids=lambda c: f"{c[0]}-{c[1]}"
                         + ("-sleep" if c[2] else ""))
def test_sampled_classes_subset_of_exhaustive(case, explored):
    result, full = explored[case]
    exhaustive = set(full.keys())
    n = max(1, full.num_classes // 2)
    for seed in SEEDS:
        sampled = generate(result, sample=n, seed=seed)
        assert set(sampled.keys()) <= exhaustive
        assert sampled.num_classes <= n
        assert not sampled.truncated  # a sample stop is not truncation


@pytest.mark.parametrize("case", CASES, ids=lambda c: f"{c[0]}-{c[1]}"
                         + ("-sleep" if c[2] else ""))
def test_sample_monotone_in_budget(case, explored):
    result, full = explored[case]
    top = full.num_classes
    for seed in range(10):
        prev_keys: set = set()
        prev_cov = 0.0
        for n in sorted({1, max(1, top // 2), top, top + 5}):
            sset = generate(result, sample=n, seed=seed)
            keys = set(sset.keys())
            assert prev_keys <= keys, (
                f"seed {seed}: sample at N={n} dropped classes"
            )
            assert sset.edge_coverage >= prev_cov
            prev_keys, prev_cov = keys, sset.edge_coverage


@pytest.mark.parametrize("case", CASES, ids=lambda c: f"{c[0]}-{c[1]}"
                         + ("-sleep" if c[2] else ""))
def test_full_budget_sample_is_exhaustive(case, explored):
    result, full = explored[case]
    for seed in SEEDS:
        # N > classes: the target is unreachable, the walk must drain
        over = generate(result, sample=full.num_classes + 1, seed=seed)
        assert over.exhausted
        assert over.class_coverage == 1.0
        assert set(over.keys()) == set(full.keys())
        # N == classes: every class is still found (the walk only stops
        # on the Nth), but exhaustion is only provable if the Nth class
        # arrived on the final path
        exact = generate(result, sample=full.num_classes, seed=seed)
        assert set(exact.keys()) == set(full.keys())
        assert exact.class_coverage in (1.0, None)


def test_undersized_sample_reports_unknown_class_coverage(explored):
    """A walk stopped early cannot know the class total: coverage is
    None (rendered as unknown), never a guess."""
    result, full = explored[("philosophers_3", "stubborn", False)]
    assert full.num_classes > 1
    sset = generate(result, sample=1, seed=0)
    assert not sset.exhausted
    assert sset.class_coverage is None
    assert sset.num_classes == 1
