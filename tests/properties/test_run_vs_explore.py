"""Property: scheduled executions agree with exploration.

Any single run under any scheduler must land in a result configuration
that full exploration also reaches — the transition system has one
semantics, the explorer just enumerates it.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore import explore
from repro.semantics import run_program
from tests.properties.test_reduction_soundness import programs


@given(prog=programs(), seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=40, deadline=None)
def test_random_run_outcome_is_explored(prog, seed):
    run = run_program(prog, scheduler="random", seed=seed, max_steps=10_000)
    result = explore(prog, "full")
    assert run.config.result_store() in result.final_stores()


@given(prog=programs())
@settings(max_examples=25, deadline=None)
def test_roundrobin_and_first_outcomes_explored(prog):
    result = explore(prog, "full")
    for scheduler in ("roundrobin", "first"):
        run = run_program(prog, scheduler=scheduler, max_steps=10_000)
        assert run.config.result_store() in result.final_stores()


@given(prog=programs(), seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_run_outcome_also_in_reduced_exploration(prog, seed):
    """The reduced space preserves result configurations, so any run's
    outcome must be found there too."""
    run = run_program(prog, scheduler="random", seed=seed, max_steps=10_000)
    reduced = explore(prog, "stubborn", coarsen=True)
    assert run.config.result_store() in reduced.final_stores()
