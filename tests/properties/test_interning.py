"""Hypothesis laws for the structural interning layer in
:mod:`repro.semantics.config`.

Three laws back the parallel backend's correctness:

1. *Transparency* — ``intern_config(c) == c`` always; interning never
   changes a value's meaning.
2. *Identity iff equality* — two interned configs are the same object
   exactly when they are equal.
3. *Transport* — the compact ``__reduce__`` pickle round-trips
   equality, hash, and the stable digest, including across a real OS
   process boundary (workers and master must agree on what a
   configuration *is*).
"""

from __future__ import annotations

import multiprocessing as mp
import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semantics import Config, Frame, HeapObj, Pointer, Process
from repro.semantics.config import (
    intern_config,
    shard_of,
    stable_digest,
)

# --------------------------------------------------------------------------
# strategies: small but structurally varied configurations
# --------------------------------------------------------------------------

oids = st.tuples(st.sampled_from(["a3", "m7", "<globals>"]), st.integers(0, 2))
values = st.one_of(
    st.integers(-3, 9),
    st.none(),
    st.builds(Pointer, obj=oids, offset=st.integers(0, 1)),
)


@st.composite
def frames(draw):
    return Frame(
        func=draw(st.sampled_from(["main", "f", "g"])),
        pc=draw(st.integers(0, 5)),
        locals=tuple(draw(st.lists(values, max_size=2))),
    )


@st.composite
def processes(draw, pid):
    return Process(
        pid=pid,
        frames=tuple(draw(st.lists(frames(), min_size=1, max_size=2))),
        status=draw(st.sampled_from(["run", "join", "done"])),
        join_pc=draw(st.integers(-1, 3)),
    )


@st.composite
def configs(draw):
    pids = [(0,)] + draw(
        st.lists(st.tuples(st.just(0), st.integers(0, 2)), max_size=2, unique=True)
    )
    procs = tuple(draw(processes(pid)) for pid in sorted(pids))
    heap = tuple(
        HeapObj(oid=oid, cells=tuple(draw(st.lists(values, min_size=1, max_size=2))))
        for oid in sorted(draw(st.lists(oids, max_size=2, unique=True)))
    )
    return Config(
        procs=procs,
        globals=tuple(draw(st.lists(st.integers(-2, 5), max_size=3))),
        heap=heap,
        fault=draw(st.one_of(st.none(), st.just("div by zero"))),
    )


# --------------------------------------------------------------------------
# laws
# --------------------------------------------------------------------------


@given(c=configs())
@settings(max_examples=60, deadline=None)
def test_intern_is_transparent(c):
    i = intern_config(c)
    assert i == c
    assert hash(i) == hash(c)
    assert stable_digest(i) == stable_digest(c)


@given(a=configs(), b=configs())
@settings(max_examples=60, deadline=None)
def test_intern_identity_iff_equality(a, b):
    ia, ib = intern_config(a), intern_config(b)
    assert (ia is ib) == (a == b)
    # idempotent: re-interning yields the same representative
    assert intern_config(ia) is ia


@given(c=configs())
@settings(max_examples=60, deadline=None)
def test_pickle_roundtrip_preserves_everything(c):
    r = pickle.loads(pickle.dumps(c))
    assert r == c
    assert hash(r) == hash(c)
    assert stable_digest(r) == stable_digest(c)
    # loads re-interns: the copy collapses onto the canonical object
    assert r is intern_config(c)


@given(a=configs(), b=configs())
@settings(max_examples=40, deadline=None)
def test_pickle_preserves_distinctness(a, b):
    ra, rb = pickle.loads(pickle.dumps((a, b)))
    assert (ra == rb) == (a == b)


def _probe(conn):
    c = conn.recv()
    conn.send((stable_digest(c), shard_of(c, 4), pickle.dumps(c)))
    conn.close()


@given(c=configs())
@settings(max_examples=10, deadline=None)
def test_digest_agrees_across_process_boundary(c):
    """Master and worker must route a configuration to the same shard:
    ship a config to a child process, have it digest and re-pickle it,
    and check both directions agree."""
    ctx = mp.get_context()
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=_probe, args=(child,), daemon=True)
    proc.start()
    child.close()
    try:
        parent.send(c)
        digest, shard, payload = parent.recv()
    finally:
        parent.close()
        proc.join(timeout=10)
    assert digest == stable_digest(c)
    assert shard == shard_of(c, 4)
    back = pickle.loads(payload)
    assert back == c and hash(back) == hash(c)
