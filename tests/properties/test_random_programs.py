"""Seeded random-program differential tests.

Unlike the hypothesis suite (which shrinks but re-rolls its examples),
these use :func:`repro.programs.synthetic.random_program` with fixed
seeds: the exact same 50 programs on every run, on every machine —
a reproducible regression net for the reduction machinery with zero
wall-clock or global-RNG nondeterminism.
"""

from __future__ import annotations

import pytest

from repro.explore import explore
from repro.programs.synthetic import random_program, random_program_source

SEEDS = range(50)


def test_source_is_deterministic():
    for seed in range(10):
        assert random_program_source(seed) == random_program_source(seed)


def test_seeds_vary():
    sources = {random_program_source(seed) for seed in SEEDS}
    assert len(sources) > 40  # distinct seeds give distinct programs


@pytest.mark.parametrize("seed", SEEDS)
def test_stubborn_coarsen_matches_full(seed):
    prog = random_program(seed)
    full = explore(prog, "full")
    red = explore(prog, "stubborn", coarsen=True)
    assert red.final_stores() == full.final_stores()
    assert red.stats.num_deadlocks == full.stats.num_deadlocks
    assert red.stats.num_configs <= full.stats.num_configs


@pytest.mark.parametrize("seed", range(0, 50, 5))
def test_everything_on_matches_full(seed):
    # the maximal reduction stack on a subsample of the same seeds
    prog = random_program(seed)
    full = explore(prog, "full")
    red = explore(prog, "stubborn", coarsen=True, sleep=True)
    assert red.final_stores() == full.final_stores()
