"""Property: pretty-print/parse round-trips on *random* programs, and
the compiler accepts whatever the generator produces."""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast_nodes as A
from repro.lang import builder as B
from repro.lang import compile_program
from repro.lang.parser import parse
from repro.lang.pretty import pretty_program

GLOBALS = ["g0", "g1", "g2"]

exprs_leaf = st.one_of(
    st.integers(min_value=-9, max_value=9).map(B.const),
    st.sampled_from(GLOBALS).map(B.var),
)


def exprs(depth=2):
    if depth == 0:
        return exprs_leaf
    sub = exprs(depth - 1)
    return st.one_of(
        exprs_leaf,
        st.tuples(
            st.sampled_from(["+", "-", "*", "==", "!=", "<", "<=", ">", ">=", "&&", "||"]),
            sub,
            sub,
        ).map(lambda t: B.binop(*t)),
        st.tuples(st.sampled_from(["-", "!"]), sub).map(lambda t: B.unary(*t)),
    )


@st.composite
def stmts(draw, depth=1):
    kind = draw(
        st.sampled_from(
            ["assign", "skip", "assume", "assert"]
            + (["if", "while", "cobegin"] if depth > 0 else [])
        )
    )
    if kind == "assign":
        return B.assign(draw(st.sampled_from(GLOBALS)), draw(exprs()))
    if kind == "skip":
        return B.skip()
    if kind == "assume":
        return B.assume(draw(exprs()))
    if kind == "assert":
        return B.assert_(draw(exprs()))
    body = draw(st.lists(stmts(depth=depth - 1), min_size=1, max_size=2))
    if kind == "if":
        else_body = draw(st.lists(stmts(depth=depth - 1), min_size=0, max_size=2))
        return B.if_(draw(exprs()), body, else_body)
    if kind == "while":
        return B.while_(draw(exprs()), body)
    branches = draw(
        st.lists(st.lists(stmts(depth=depth - 1), min_size=1, max_size=2),
                 min_size=1, max_size=3)
    )
    return B.cobegin(*branches)


@st.composite
def program_asts(draw):
    body = draw(st.lists(stmts(), min_size=1, max_size=4))
    return B.program(
        B.globals(**{g: draw(st.integers(-5, 5)) for g in GLOBALS}),
        B.func("main")(*body),
    )


def _normalize(node):
    """Fold ``-literal`` chains bottom-up, as the parser does."""
    if isinstance(node, A.Unary):
        operand = _normalize(node.operand)
        if node.op == "-" and isinstance(operand, A.IntLit):
            return A.IntLit(value=-operand.value)
        return A.Unary(op=node.op, operand=operand)
    if isinstance(node, A.Binary):
        return A.Binary(op=node.op, left=_normalize(node.left), right=_normalize(node.right))
    return node


def _strip(node):
    if isinstance(node, A.Expr):
        node = _normalize(node)
    if isinstance(node, A.ProgramAST):
        return (
            tuple(_strip(g) for g in node.globals),
            tuple(_strip(f) for f in node.funcs),
        )
    if isinstance(node, A.FuncDef):
        return ("func", node.name, node.params, tuple(_strip(s) for s in node.body))
    if dataclasses.is_dataclass(node):
        return (
            type(node).__name__,
            tuple(
                (f.name, _strip(getattr(node, f.name)))
                for f in dataclasses.fields(node)
                if f.name != "line"
            ),
        )
    if isinstance(node, tuple):
        return tuple(_strip(x) for x in node)
    return node


@given(ast=program_asts())
@settings(max_examples=80, deadline=None)
def test_pretty_parse_roundtrip(ast):
    printed = pretty_program(ast)
    reparsed = parse(printed)
    assert _strip(reparsed) == _strip(ast)


@given(ast=program_asts())
@settings(max_examples=80, deadline=None)
def test_random_ast_compiles(ast):
    prog = compile_program(ast)
    assert prog.funcs["main"].instrs  # at least the implicit return


@given(ast=program_asts())
@settings(max_examples=40, deadline=None)
def test_compile_is_deterministic(ast):
    a = compile_program(ast)
    b = compile_program(ast)
    assert a.funcs["main"].instrs == b.funcs["main"].instrs
    assert a.labels.keys() == b.labels.keys()
