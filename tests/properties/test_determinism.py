"""Property: the whole pipeline is deterministic (DESIGN.md §5).

Exploration graphs, analyses, and folded abstract spaces must come out
identical across repeated runs — ordered data structures throughout.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.abstraction import taylor_explore
from repro.analyses.dependence import dependences
from repro.analyses.races import races
from repro.explore import explore
from tests.properties.test_reduction_soundness import programs


def _graph_fingerprint(result):
    return (
        result.stats.num_configs,
        tuple((e.src, e.dst, e.labels, e.pid) for e in result.graph.edges),
        tuple(sorted(result.graph.terminal.items())),
    )


@given(prog=programs())
@settings(max_examples=25, deadline=None)
def test_exploration_deterministic(prog):
    for policy, coarsen in (("full", False), ("stubborn", True)):
        a = explore(prog, policy, coarsen=coarsen)
        b = explore(prog, policy, coarsen=coarsen)
        assert _graph_fingerprint(a) == _graph_fingerprint(b)


@given(prog=programs())
@settings(max_examples=20, deadline=None)
def test_analyses_deterministic(prog):
    r1 = explore(prog, "full")
    r2 = explore(prog, "full")
    assert dependences(prog, r1).deps == dependences(prog, r2).deps
    assert races(prog, r1) == races(prog, r2)


@given(prog=programs())
@settings(max_examples=20, deadline=None)
def test_folding_deterministic(prog):
    a = taylor_explore(prog)
    b = taylor_explore(prog)
    assert a.stats.num_states == b.stats.num_states
    assert set(a.table) == set(b.table)
    assert a.edges == b.edges
