"""Differential soundness: every policy combination × every corpus
program must produce the ``full`` baseline's result configurations.

This is the paper's central claim tested end-to-end: stubborn sets
(both granularities), virtual coarsening, and sleep sets — alone and in
every combination — preserve final stores, deadlock counts, and fault
messages.  The hypothesis suite (``test_reduction_soundness.py``)
covers random programs; this module covers the *curated* corpus, whose
programs exercise pointers, nested cobegin, first-class functions and
the paper's figures — shapes the random grammar does not generate.
"""

from __future__ import annotations

import pytest

from repro.bench import policy_combos
from repro.explore import ExploreOptions, explore
from repro.programs.corpus import CORPUS

COMBOS = policy_combos()
COMBO_IDS = [
    ExploreOptions(policy=p, coarsen=c, sleep=s).describe()
    for p, c, s in COMBOS
]

# compiled programs and full-exploration baselines, computed once per
# program rather than once per (program, combo) pair
_PROGRAMS: dict = {}
_BASELINES: dict = {}


def _program(name):
    prog = _PROGRAMS.get(name)
    if prog is None:
        prog = _PROGRAMS[name] = CORPUS[name]()
    return prog


def _baseline(name):
    base = _BASELINES.get(name)
    if base is None:
        r = explore(_program(name), "full")
        base = _BASELINES[name] = (
            r.final_stores(),
            r.stats.num_deadlocks,
            frozenset(r.fault_messages()),
        )
    return base


@pytest.mark.parametrize("combo", COMBOS, ids=COMBO_IDS)
@pytest.mark.parametrize("name", sorted(CORPUS))
def test_policy_matches_full_baseline(name, combo):
    policy, coarsen, sleep = combo
    stores, deadlocks, faults = _baseline(name)
    r = explore(_program(name), policy, coarsen=coarsen, sleep=sleep)
    assert not r.stats.truncated
    assert r.final_stores() == stores
    assert r.stats.num_deadlocks == deadlocks
    assert frozenset(r.fault_messages()) == faults


def test_grid_is_complete():
    # 3 policies × ±coarsen × ±sleep, no duplicates, baseline first
    assert len(COMBOS) == 12
    assert len(set(COMBOS)) == 12
    assert COMBOS[0] == ("full", False, False)
