"""Property-based lattice/Galois laws for every abstract domain.

For each numeric domain: partial-order laws, join-as-lub, meet-as-glb,
α/γ soundness, transfer-function soundness against the concrete
operators, and widening covering/stabilization.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.absdomain.concrete_ops import apply_binop, apply_unop
from repro.absdomain.flat import FlatConstDomain
from repro.absdomain.interval import IntervalDomain
from repro.absdomain.kset import KSetDomain
from repro.absdomain.parity import ParityDomain
from repro.absdomain.product import ProductDomain
from repro.absdomain.sign import SignDomain

DOMAINS = {
    "flat": FlatConstDomain(),
    "sign": SignDomain(),
    "interval": IntervalDomain(),
    "parity": ParityDomain(),
    "kset3": KSetDomain(3),
    "interval_x_parity": ProductDomain(IntervalDomain(), ParityDomain()),
}

ints = st.integers(min_value=-40, max_value=40)
small_int_sets = st.lists(ints, min_size=1, max_size=4)

BINOPS = ["+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"]
UNOPS = ["-", "!"]


def elements(dom):
    """Abstract elements reachable as joins of a few abstracted ints,
    plus ⊥ and ⊤."""
    base = small_int_sets.map(dom.abstract_all)
    return st.one_of(st.just(dom.bottom), st.just(dom.top), base)


@pytest.mark.parametrize("name", sorted(DOMAINS))
class TestLatticeLaws:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_leq_reflexive(self, name, data):
        dom = DOMAINS[name]
        a = data.draw(elements(dom))
        assert dom.leq(a, a)

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_leq_transitive(self, name, data):
        dom = DOMAINS[name]
        a = data.draw(elements(dom))
        b = data.draw(elements(dom))
        c = data.draw(elements(dom))
        if dom.leq(a, b) and dom.leq(b, c):
            assert dom.leq(a, c)

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_bot_top_extremes(self, name, data):
        dom = DOMAINS[name]
        a = data.draw(elements(dom))
        assert dom.leq(dom.bottom, a)
        assert dom.leq(a, dom.top)

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_join_is_upper_bound(self, name, data):
        dom = DOMAINS[name]
        a = data.draw(elements(dom))
        b = data.draw(elements(dom))
        j = dom.join(a, b)
        assert dom.leq(a, j) and dom.leq(b, j)

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_join_commutative_idempotent(self, name, data):
        dom = DOMAINS[name]
        a = data.draw(elements(dom))
        b = data.draw(elements(dom))
        assert dom.join(a, b) == dom.join(b, a)
        assert dom.join(a, a) == a

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_meet_is_lower_bound(self, name, data):
        dom = DOMAINS[name]
        a = data.draw(elements(dom))
        b = data.draw(elements(dom))
        m = dom.meet(a, b)
        assert dom.leq(m, a) and dom.leq(m, b)

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_widen_covers_both(self, name, data):
        dom = DOMAINS[name]
        a = data.draw(elements(dom))
        b = data.draw(elements(dom))
        w = dom.widen(a, b)
        assert dom.leq(a, w) and dom.leq(b, w)


@pytest.mark.parametrize("name", sorted(DOMAINS))
class TestGaloisSoundness:
    @given(n=ints)
    @settings(max_examples=60, deadline=None)
    def test_alpha_gamma_membership(self, name, n):
        dom = DOMAINS[name]
        assert dom.contains(dom.abstract(n), n)

    @given(ns=small_int_sets, n_extra=ints)
    @settings(max_examples=60, deadline=None)
    def test_join_preserves_membership(self, name, ns, n_extra):
        dom = DOMAINS[name]
        a = dom.abstract_all(ns)
        for n in ns:
            assert dom.contains(a, n)
        bigger = dom.join(a, dom.abstract(n_extra))
        for n in ns + [n_extra]:
            assert dom.contains(bigger, n)

    @given(x=ints, y=ints, op=st.sampled_from(BINOPS))
    @settings(max_examples=200, deadline=None)
    def test_binop_sound(self, name, x, y, op):
        dom = DOMAINS[name]
        concrete = apply_binop(op, x, y)
        if concrete is None:
            return  # faulting combination: concrete semantics crashes
        res = dom.binop(op, dom.abstract(x), dom.abstract(y))
        assert dom.contains(res, concrete), (op, x, y, res)

    @given(xs=small_int_sets, ys=small_int_sets, op=st.sampled_from(BINOPS))
    @settings(max_examples=120, deadline=None)
    def test_binop_sound_on_joined_inputs(self, name, xs, ys, op):
        dom = DOMAINS[name]
        a = dom.abstract_all(xs)
        b = dom.abstract_all(ys)
        res = dom.binop(op, a, b)
        for x in xs:
            for y in ys:
                concrete = apply_binop(op, x, y)
                if concrete is not None:
                    assert dom.contains(res, concrete), (op, x, y)

    def test_interval_mod_wide_dividend_regression(self, name):
        # [-34, 31] is wider than the enumeration cap, so interval `%`
        # takes its fallback path; C-mod is not monotone in the dividend
        # (-1 % 2 == -1 beats both endpoint remainders), which an
        # endpoint probe used to miss.
        dom = DOMAINS[name]
        a = dom.abstract_all([-34, 31])
        res = dom.binop("%", a, dom.abstract(2))
        for x in range(-34, 32):
            if not dom.contains(a, x):
                continue  # precise domains don't widen to the full range
            concrete = apply_binop("%", x, 2)
            assert dom.contains(res, concrete), (x, concrete, res)

    @given(x=ints, op=st.sampled_from(UNOPS))
    @settings(max_examples=80, deadline=None)
    def test_unop_sound(self, name, x, op):
        dom = DOMAINS[name]
        concrete = apply_unop(op, x)
        res = dom.unop(op, dom.abstract(x))
        assert dom.contains(res, concrete)

    @given(x=ints)
    @settings(max_examples=80, deadline=None)
    def test_truth_sound(self, name, x):
        dom = DOMAINS[name]
        may_t, may_f = dom.truth(dom.abstract(x))
        if x != 0:
            assert may_t
        else:
            assert may_f

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_monotone_binop(self, name, data):
        dom = DOMAINS[name]
        op = data.draw(st.sampled_from(["+", "-", "*"]))
        a = data.draw(elements(dom))
        b = data.draw(elements(dom))
        bigger_a = dom.join(a, data.draw(elements(dom)))
        r1 = dom.binop(op, a, b)
        r2 = dom.binop(op, bigger_a, b)
        assert dom.leq(r1, r2), (op, a, bigger_a, b)


@given(ns=st.lists(ints, min_size=2, max_size=30))
@settings(max_examples=60, deadline=None)
def test_interval_widening_sequence_stabilizes(ns):
    dom = IntervalDomain()
    x = dom.abstract(ns[0])
    changes = 0
    for n in ns[1:]:
        nxt = dom.widen(x, dom.join(x, dom.abstract(n)))
        if nxt != x:
            changes += 1
        x = nxt
    assert changes <= 2  # each bound can jump to ∞ at most once
