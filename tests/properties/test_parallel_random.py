"""Seeded random-program differential net for the parallel backend.

Same philosophy as :mod:`tests.properties.test_random_programs`: the
exact same 50 synthetic programs on every run, on every machine.  Each
is explored by the serial reference and by the sharded multiprocessing
driver, and the results must agree on everything observable — the
configuration/edge counts, the paper's result-configuration invariant
(final stores), and deadlock/fault classification.

Random programs exercise shard routing far harder than the corpus: the
synthetic generator produces irregular branching, so frontier rounds
ship uneven cross-shard batches.
"""

from __future__ import annotations

import pytest

from repro.explore import ExploreOptions, explore
from repro.programs.synthetic import random_program

SEEDS = range(50)


def _pair(prog, policy, jobs=2):
    ser = explore(prog, options=ExploreOptions(policy=policy))
    par = explore(
        prog,
        options=ExploreOptions(policy=policy, backend="parallel", jobs=jobs),
    )
    return ser, par


def _assert_match(ser, par):
    assert par.stats.num_configs == ser.stats.num_configs
    assert par.stats.num_edges == ser.stats.num_edges
    assert par.final_stores() == ser.final_stores()
    assert par.stats.num_deadlocks == ser.stats.num_deadlocks
    assert par.stats.num_faults == ser.stats.num_faults
    assert set(par.graph.configs) == set(ser.graph.configs)


@pytest.mark.parametrize("seed", SEEDS)
def test_parallel_stubborn_matches_serial(seed):
    ser, par = _pair(random_program(seed), "stubborn")
    _assert_match(ser, par)


@pytest.mark.parametrize("seed", range(0, 50, 5))
def test_parallel_full_matches_serial(seed):
    ser, par = _pair(random_program(seed), "full")
    _assert_match(ser, par)


@pytest.mark.parametrize("seed", range(0, 50, 10))
def test_parallel_four_jobs_matches_serial(seed):
    ser, par = _pair(random_program(seed), "stubborn", jobs=4)
    _assert_match(ser, par)
