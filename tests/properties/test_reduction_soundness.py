"""Property: every reduction preserves the result configurations.

Random cobegin programs (assignments, guards, locks, calls, heap) are
explored under full interleaving and under each reduction; the sets of
observable outcomes — final stores plus deadlock/fault payloads — must
be identical.  This is the paper's central correctness claim for
stubborn sets (§2) and virtual coarsening (Observation 5), and the
Godefroid guarantee for sleep sets.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore import explore
from repro.lang import builder as B
from repro.lang import compile_program

GLOBALS = ["ga", "gb", "gc"]
LOCK = "lk"


@st.composite
def statements(draw, depth: int = 0):
    """One random statement for a branch body."""
    kind = draw(
        st.sampled_from(
            ["set", "inc", "copy", "skip", "locked", "guard", "ite"]
            if depth == 0
            else ["set", "inc", "copy", "skip"]
        )
    )
    g = draw(st.sampled_from(GLOBALS))
    h = draw(st.sampled_from(GLOBALS))
    c = draw(st.integers(min_value=0, max_value=3))
    if kind == "set":
        return [B.assign(g, c)]
    if kind == "inc":
        return [B.assign(g, B.add(g, 1))]
    if kind == "copy":
        return [B.assign(g, B.var(h))]
    if kind == "skip":
        return [B.skip()]
    if kind == "locked":
        return [B.acquire(LOCK), B.assign(g, B.add(g, 1)), B.release(LOCK)]
    if kind == "guard":
        # may deadlock — deadlocks are result configurations too
        return [B.assume(B.binop(">=", B.var(g), c))]
    if kind == "ite":
        inner = draw(statements(depth=1))
        return [B.if_(B.eq(g, c), inner, [B.skip()])]
    raise AssertionError(kind)


@st.composite
def programs(draw):
    n_branches = draw(st.integers(min_value=2, max_value=3))
    branches = []
    for _ in range(n_branches):
        n_stmts = draw(st.integers(min_value=1, max_value=3))
        body: list = []
        for _ in range(n_stmts):
            body.extend(draw(statements()))
        branches.append(body)
    main_body = [B.cobegin(*branches)]
    tail = draw(st.booleans())
    if tail:
        main_body.append(B.assign(GLOBALS[0], B.add(GLOBALS[0], 1)))
    ast = B.program(
        B.globals(**{name: 0 for name in GLOBALS}, **{LOCK: 0}),
        B.func("main")(*main_body),
    )
    return compile_program(ast)


@given(prog=programs())
@settings(max_examples=40, deadline=None)
def test_stubborn_preserves_results(prog):
    full = explore(prog, "full")
    red = explore(prog, "stubborn")
    assert red.final_stores() == full.final_stores()


@given(prog=programs())
@settings(max_examples=40, deadline=None)
def test_stubborn_proc_preserves_results(prog):
    full = explore(prog, "full")
    red = explore(prog, "stubborn-proc")
    assert red.final_stores() == full.final_stores()


@given(prog=programs())
@settings(max_examples=40, deadline=None)
def test_coarsening_preserves_results(prog):
    full = explore(prog, "full")
    red = explore(prog, "full", coarsen=True)
    assert red.final_stores() == full.final_stores()


@given(prog=programs())
@settings(max_examples=40, deadline=None)
def test_all_reductions_combined_preserve_results(prog):
    full = explore(prog, "full")
    red = explore(prog, "stubborn", coarsen=True, sleep=True)
    assert red.final_stores() == full.final_stores()


@given(prog=programs())
@settings(max_examples=30, deadline=None)
def test_sleep_preserves_results(prog):
    full = explore(prog, "full")
    red = explore(prog, "full", sleep=True)
    assert red.final_stores() == full.final_stores()


@given(prog=programs())
@settings(max_examples=30, deadline=None)
def test_reductions_never_grow_the_space(prog):
    full = explore(prog, "full")
    for policy, coarsen in (("stubborn", False), ("full", True), ("stubborn", True)):
        red = explore(prog, policy, coarsen=coarsen)
        assert red.stats.num_configs <= full.stats.num_configs
