"""Cross-analysis consistency properties on random programs.

The analyses are views of one explored space; they must agree:

- dynamic MHP ⊆ static MHP;
- every *cross-thread* dependence connects statements that are
  statically concurrent;
- every race pair is dynamically MHP and constitutes a cross-thread
  conflict the dependence analysis also sees.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.analyses.dependence import INIT, dependences
from repro.analyses.mhp import mhp_dynamic, mhp_static
from repro.analyses.races import races
from repro.explore import explore
from tests.properties.test_reduction_soundness import programs


@given(prog=programs())
@settings(max_examples=25, deadline=None)
def test_dynamic_mhp_within_static(prog):
    result = explore(prog, "full")
    dyn = mhp_dynamic(prog, result)
    stat = mhp_static(prog)
    assert dyn <= stat


@given(prog=programs())
@settings(max_examples=25, deadline=None)
def test_cross_thread_deps_are_statically_concurrent(prog):
    result = explore(prog, "full")
    deps = dependences(prog, result)
    stat = mhp_static(prog)
    joins = {l for l in () }
    for d in deps.deps:
        if not d.cross_thread or d.src == INIT:
            continue
        if d.src == d.dst:
            continue
        # join pseudo-labels ("...$join") have no static location
        if d.src.endswith("$join") or d.dst.endswith("$join"):
            continue
        assert frozenset((d.src, d.dst)) in stat, d


@given(prog=programs())
@settings(max_examples=25, deadline=None)
def test_races_are_mhp_conflicts(prog):
    result = explore(prog, "full")
    found = races(prog, result)
    dyn = mhp_dynamic(prog, result)
    for r in found:
        assert frozenset((r.label_a, r.label_b)) in dyn, r
