"""`repro bench` harness tests (the JSON contract and the soundness gate)."""

import json

import pytest

from repro.bench import (
    COMPATIBLE_SCHEMAS,
    SCHEMA_VERSION,
    SMOKE_PROGRAMS,
    DivergenceError,
    _Baseline,
    _check_equivalence,
    diff_reports,
    format_summary,
    load_report,
    parallel_combos,
    policy_combos,
    run_bench,
    run_serve_load,
    upgrade_document,
    write_report,
)
from repro.explore import explore
from repro.programs.corpus import CORPUS
from repro.util.errors import ReproError


def test_smoke_programs_exist_in_corpus():
    assert set(SMOKE_PROGRAMS) <= set(CORPUS)


def test_unknown_program_rejected():
    with pytest.raises(ReproError, match="unknown corpus"):
        run_bench(programs=["no_such_program"])


def test_single_program_document_shape():
    report = run_bench(programs=["fig2_shasha_snir"])
    doc = report.document
    assert doc["schema"] == SCHEMA_VERSION
    assert doc["metrics_schema"].startswith("repro.metrics/")
    assert doc["policy_grid"][0] == "full"
    assert len(doc["policy_grid"]) == len(policy_combos()) == 12
    entry = doc["programs"]["fig2_shasha_snir"]
    assert entry["baseline"] == "full"
    policies = entry["policies"]
    assert set(policies) == set(doc["policy_grid"])
    full = policies["full"]
    assert full["reduction_vs_full"] == 1.0
    assert full["configs"] > 0 and full["edges"] > 0
    for combo, p in policies.items():
        assert p["results_match_full"], combo
        assert not p["truncated"], combo
        assert p["wall_time_s"] >= 0
    # stubborn policies actually reduce this program
    assert policies["stubborn"]["configs"] < full["configs"]
    assert policies["stubborn"]["reduction_vs_full"] > 1.0
    assert policies["stubborn"]["metrics"]["stubborn_singleton_rate"] > 0


def test_totals_aggregate_and_summary(tmp_path):
    report = run_bench(programs=["fig2_shasha_snir", "mutex_counter"])
    doc = report.document
    per_combo = 0
    for combo in doc["policy_grid"]:
        tot = doc["totals"][combo]
        summed = sum(
            doc["programs"][n]["policies"][combo]["configs"]
            for n in doc["programs"]
        )
        assert tot["configs"] == summed
        per_combo += 1
    assert per_combo == 12

    out = tmp_path / "bench.json"
    write_report(report, str(out))
    loaded = json.loads(out.read_text())
    assert loaded["schema"] == SCHEMA_VERSION

    summary = format_summary(report)
    assert "full" in summary and "stubborn+coarsen+sleep" in summary
    assert "matched 'full'" in summary


def test_divergence_fails_loudly():
    r = explore(CORPUS["fig2_shasha_snir"](), "stubborn")
    good = _Baseline(
        stores=r.final_stores(),
        deadlocks=r.stats.num_deadlocks,
        faults=frozenset(r.fault_messages()),
    )
    _check_equivalence("fig2", "stubborn", r, good)  # no raise

    with pytest.raises(DivergenceError, match="result stores differ"):
        _check_equivalence(
            "fig2",
            "stubborn",
            r,
            _Baseline(stores=set(), deadlocks=0, faults=frozenset()),
        )
    with pytest.raises(DivergenceError, match="deadlock count"):
        _check_equivalence(
            "fig2",
            "stubborn",
            r,
            _Baseline(stores=good.stores, deadlocks=7, faults=good.faults),
        )
    with pytest.raises(DivergenceError, match="fault messages"):
        _check_equivalence(
            "fig2",
            "stubborn",
            r,
            _Baseline(
                stores=good.stores,
                deadlocks=good.deadlocks,
                faults=frozenset({"boom"}),
            ),
        )


def test_time_limit_marks_truncated_instead_of_failing():
    report = run_bench(programs=["fig2_shasha_snir"], time_limit_s=0.0)
    doc = report.document
    assert doc["truncated_runs"]  # every run hit the zero budget
    for p in doc["programs"]["fig2_shasha_snir"]["policies"].values():
        assert p["truncated"]
        assert not p["results_match_full"]
        assert p["truncation_reason"] == "time"


def test_entries_carry_resilience_fields():
    report = run_bench(programs=["fig2_shasha_snir"])
    doc = report.document
    assert doc["errors"] == {} and doc["watchdog_s"] is None
    for p in doc["programs"]["fig2_shasha_snir"]["policies"].values():
        assert p["truncation_reason"] is None
        assert p["peak_rss_bytes"] > 0  # Linux exposes RSS
        assert p["escalations"] == []


#: A minimal PR-1 era (`/1`) document: no errors/watchdog keys, entries
#: without the resilience fields.
V1_DOC = {
    "schema": "repro.bench.explore/1",
    "metrics_schema": "repro.metrics/1",
    "smoke": False,
    "max_configs": 200_000,
    "time_limit_s": None,
    "policy_grid": ["full"],
    "programs": {
        "fig2_shasha_snir": {
            "baseline": "full",
            "policies": {
                "full": {
                    "policy": "full",
                    "configs": 10,
                    "edges": 12,
                    "truncated": False,
                    "wall_time_s": 0.1,
                }
            },
        }
    },
    "totals": {"full": {"configs": 10, "edges": 12, "wall_time_s": 0.1}},
    "truncated_runs": [],
    "soundness": "all policies matched 'full' result configurations",
}


def test_upgrade_v1_document_fills_defaults():
    doc = upgrade_document(json.loads(json.dumps(V1_DOC)))
    assert doc["errors"] == {}
    assert doc["watchdog_s"] is None
    entry = doc["programs"]["fig2_shasha_snir"]["policies"]["full"]
    assert entry["truncation_reason"] is None
    assert entry["peak_rss_bytes"] == 0
    assert entry["escalations"] == []
    # fields the v1 document did carry are untouched
    assert entry["configs"] == 10


def test_load_report_accepts_v1_and_v2(tmp_path):
    v1 = tmp_path / "v1.json"
    v1.write_text(json.dumps(V1_DOC))
    doc = load_report(str(v1))
    assert doc["schema"] in COMPATIBLE_SCHEMAS
    assert doc["errors"] == {}

    report = run_bench(programs=["fig2_shasha_snir"])
    v2 = tmp_path / "v2.json"
    write_report(report, str(v2))
    doc2 = load_report(str(v2))
    assert doc2["schema"] == SCHEMA_VERSION


def test_unknown_schema_rejected():
    with pytest.raises(ReproError, match="unsupported bench schema"):
        upgrade_document({"schema": "repro.bench.explore/99"})


# --------------------------------------------------------------------------
# /3: parallel grid, result digests, bench-diff
# --------------------------------------------------------------------------


def test_entries_carry_backend_fields():
    report = run_bench(programs=["mutex_counter"])
    doc = report.document
    assert doc["jobs"] == [] and doc["scaling"] == {}
    for p in doc["programs"]["mutex_counter"]["policies"].values():
        assert p["backend"] == "serial"
        assert p["jobs"] == 1
        assert p["shard_balance"] is None
        assert isinstance(p["result_digest"], str)


def test_jobs_extend_grid_with_parallel_twins():
    report = run_bench(programs=["mutex_counter"], jobs=[2])
    doc = report.document
    assert doc["jobs"] == [2]
    assert len(doc["policy_grid"]) == 12 + len(parallel_combos())
    policies = doc["programs"]["mutex_counter"]["policies"]
    par = policies["stubborn@j2"]
    ser = policies["stubborn"]
    assert par["backend"] == "parallel" and par["jobs"] == 2
    assert par["shard_balance"] >= 1.0
    assert (par["configs"], par["edges"]) == (ser["configs"], ser["edges"])
    assert par["result_digest"] == ser["result_digest"]
    assert doc["totals"]["stubborn@j2"]["configs"] == par["configs"]


def test_bad_jobs_rejected():
    with pytest.raises(ReproError, match="jobs"):
        run_bench(programs=["mutex_counter"], jobs=[0])


def test_result_digest_deterministic_across_runs():
    a = run_bench(programs=["fig2_shasha_snir"])
    b = run_bench(programs=["fig2_shasha_snir"])
    pa = a.document["programs"]["fig2_shasha_snir"]["policies"]
    pb = b.document["programs"]["fig2_shasha_snir"]["policies"]
    for combo in pa:
        assert pa[combo]["result_digest"] == pb[combo]["result_digest"]


def test_diff_reports_no_drift_on_identical_runs():
    a = upgrade_document(run_bench(programs=["mutex_counter"]).document)
    b = upgrade_document(run_bench(programs=["mutex_counter"]).document)
    assert diff_reports(a, b) == []


def test_diff_reports_flags_count_drift():
    a = upgrade_document(run_bench(programs=["mutex_counter"]).document)
    b = upgrade_document(run_bench(programs=["mutex_counter"]).document)
    b["programs"]["mutex_counter"]["policies"]["stubborn"]["configs"] += 1
    drift = diff_reports(a, b)
    assert any("mutex_counter/stubborn: configs" in line for line in drift)


def test_diff_reports_ignores_nondeterministic_fields():
    a = upgrade_document(run_bench(programs=["mutex_counter"]).document)
    b = upgrade_document(run_bench(programs=["mutex_counter"]).document)
    e = b["programs"]["mutex_counter"]["policies"]["stubborn"]
    e["wall_time_s"] = 9999.0
    e["peak_rss_bytes"] = 1
    e["metrics"] = {}
    assert diff_reports(a, b) == []


def test_diff_reports_compares_only_shared_entries():
    # a smoke-subset run against a wider baseline: only the overlap counts
    a = upgrade_document(run_bench(programs=["mutex_counter"]).document)
    b = upgrade_document(
        run_bench(programs=["mutex_counter", "deadlock_pair"], jobs=[2]).document
    )
    assert diff_reports(a, b) == []


def test_diff_reports_refuses_mismatched_budgets():
    a = upgrade_document(run_bench(programs=["mutex_counter"]).document)
    b = upgrade_document(
        run_bench(programs=["mutex_counter"], max_configs=17).document
    )
    drift = diff_reports(a, b)
    assert drift and "max_configs" in drift[0]


def test_diff_reports_skips_missing_digest():
    # an upgraded /1 baseline has result_digest=None everywhere: no
    # false drift against a fresh /3 run
    base = upgrade_document(json.loads(json.dumps(V1_DOC)))
    new = upgrade_document(run_bench(programs=["fig2_shasha_snir"]).document)
    drift = diff_reports(new, base)
    assert not any("result_digest" in line for line in drift)


def test_diff_reports_empty_intersection_is_loud():
    a = upgrade_document(run_bench(programs=["mutex_counter"]).document)
    b = upgrade_document(run_bench(programs=["deadlock_pair"]).document)
    drift = diff_reports(a, b)
    assert drift and "no overlapping" in drift[0]


def test_upgrade_v2_document_fills_backend_fields():
    doc = json.loads(json.dumps(V1_DOC))
    doc["schema"] = "repro.bench.explore/2"
    doc = upgrade_document(doc)
    entry = doc["programs"]["fig2_shasha_snir"]["policies"]["full"]
    assert entry["backend"] == "serial"
    assert entry["jobs"] == 1
    assert entry["shard_balance"] is None
    assert entry["result_digest"] is None
    assert doc["jobs"] == [] and doc["scaling"] == {}


# --------------------------------------------------------------------------
# /5: the serve section
# --------------------------------------------------------------------------


def test_serve_section_null_unless_requested():
    report = run_bench(programs=["fig2_shasha_snir"])
    assert report.document["serve"] is None


def test_upgrade_v4_document_gains_serve_key():
    doc = json.loads(json.dumps(run_bench(programs=["fig2_shasha_snir"]).document))
    doc["schema"] = "repro.bench.explore/4"
    del doc["serve"]
    up = upgrade_document(doc)
    assert up["serve"] is None


def test_diff_reports_ignores_serve_section():
    a = upgrade_document(run_bench(programs=["mutex_counter"]).document)
    b = upgrade_document(run_bench(programs=["mutex_counter"]).document)
    a["serve"] = {"cold_wall_s": 1.0}
    b["serve"] = None
    assert diff_reports(a, b) == []


def test_run_serve_load_smoke():
    section = run_serve_load(smoke=True, max_configs=20_000)
    assert section["all_ok"]
    # warm replay is byte-identical and comes from the store
    assert section["digests_stable"]
    assert section["warm_store_hits"] > 0
    # identical in-flight cold submissions coalesce: one job per program
    assert section["jobs_completed"] == len(section["programs"])
    assert section["shed"] == 0
    assert section["cold_wall_s"] > 0 and section["warm_wall_s"] > 0


# --------------------------------------------------------------------------
# /8: the interconnect sub-dict
# --------------------------------------------------------------------------


def test_parallel_entries_carry_interconnect_section():
    doc = run_bench(programs=["mutex_counter"], jobs=[2]).document
    policies = doc["programs"]["mutex_counter"]["policies"]
    assert policies["stubborn"]["interconnect"] is None
    inter = policies["stubborn@j2"]["interconnect"]
    assert set(inter) == {
        "msgs",
        "msg_bytes",
        "cand_suppressed",
        "merge_overlap_s",
        "merge_tail_s",
    }
    assert inter["msg_bytes"] > 0
    assert inter["cand_suppressed"] >= 0


def test_upgrade_v7_document_gains_interconnect_key():
    doc = json.loads(
        json.dumps(run_bench(programs=["fig2_shasha_snir"]).document)
    )
    doc["schema"] = "repro.bench.explore/7"
    for prog in doc["programs"].values():
        for entry in prog["policies"].values():
            del entry["interconnect"]
    up = upgrade_document(doc)
    for prog in up["programs"].values():
        for entry in prog["policies"].values():
            assert entry["interconnect"] is None


def test_diff_reports_ignores_interconnect_drift():
    a = upgrade_document(run_bench(programs=["mutex_counter"], jobs=[2]).document)
    b = upgrade_document(run_bench(programs=["mutex_counter"], jobs=[2]).document)
    a["programs"]["mutex_counter"]["policies"]["stubborn@j2"]["interconnect"] = {
        "msgs": 999,
        "msg_bytes": 10**9,
        "cand_suppressed": 0,
        "merge_overlap_s": 5.0,
        "merge_tail_s": 5.0,
    }
    assert diff_reports(a, b) == []
