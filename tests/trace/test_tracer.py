"""Tracer core: sequence ids, spans, sinks, canonical encoding."""

import json

import pytest

from repro.trace import (
    JsonlFileSink,
    ListSink,
    RingBufferSink,
    SCHEMA_VERSION,
    SpanChunker,
    TraceRecorder,
    Tracer,
    attached_tracer,
    canonical_lines,
    read_trace,
    strip_wall,
    write_trace,
)
from repro.util.errors import ReproError


def _records(tracer):
    return tracer.sinks[0].records()


def test_event_record_shape():
    t = Tracer(ListSink(), record_wall=False)
    t.event("a.b", x=1)
    (rec,) = _records(t)
    assert rec == {
        "kind": "event", "seq": 0, "shard": None, "name": "a.b",
        "args": {"x": 1},
    }


def test_span_emitted_at_close_with_end_seq():
    t = Tracer(ListSink(), record_wall=False)
    with t.span("outer") as out:
        t.event("mid")
        out["n"] = 7
    inner_first = _records(t)
    assert [r["kind"] for r in inner_first] == ["event", "span"]
    span = inner_first[1]
    assert span["seq"] == 0 and span["end_seq"] == 2
    assert span["args"] == {"n": 7}


def test_nested_spans_close_inner_first():
    t = Tracer(ListSink(), record_wall=False)
    outer = t.begin_span("outer")
    inner = t.begin_span("inner")
    t.end_span(inner)
    t.end_span(outer)
    names = [r["name"] for r in _records(t)]
    assert names == ["inner", "outer"]
    spans = {r["name"]: r for r in _records(t)}
    # nesting is recoverable from the seq intervals
    assert spans["outer"]["seq"] < spans["inner"]["seq"]
    assert spans["inner"]["end_seq"] < spans["outer"]["end_seq"]


def test_seq_is_monotonic_and_dense():
    t = Tracer(ListSink(), record_wall=False)
    for i in range(5):
        t.event("e", i=i)
    assert [r["seq"] for r in _records(t)] == list(range(5))


def test_wall_clock_confined_to_wall_fields():
    t = Tracer(ListSink(), record_wall=True)
    with t.span("s"):
        t.event("e")
    for rec in _records(t):
        nondet = [k for k in rec if not k.startswith("wall_")]
        stripped = strip_wall(rec)
        assert sorted(stripped) == sorted(nondet)
        assert "wall_ts_us" in rec
    span = _records(t)[1]
    assert "wall_dur_us" in span and span["wall_dur_us"] >= 0


def test_record_wall_false_needs_no_stripping():
    t = Tracer(ListSink(), record_wall=False)
    with t.span("s"):
        t.event("e")
    for rec in _records(t):
        assert strip_wall(rec) == rec


def test_canonical_lines_stable_and_parseable():
    t = Tracer(ListSink(), record_wall=True)
    t.event("e", b=2, a=1)
    text = canonical_lines(_records(t))
    assert "wall_" not in text
    parsed = json.loads(text)
    assert parsed["args"] == {"a": 1, "b": 2}
    # keys sorted, no whitespace
    assert text.index('"args"') < text.index('"kind"') < text.index('"name"')
    assert " " not in text


def test_emit_passthrough_preserves_foreign_shard():
    t = Tracer(ListSink(), record_wall=False)
    t.emit({"kind": "event", "seq": 3, "shard": 5, "name": "w", "args": {}})
    assert _records(t)[0]["shard"] == 5


def test_multiple_sinks_fan_out():
    a, b = ListSink(), ListSink()
    t = Tracer(a, b, record_wall=False)
    t.event("e")
    assert a.records() == b.records() != []


# --------------------------------------------------------------------------
# sinks
# --------------------------------------------------------------------------


def test_list_sink_drain():
    s = ListSink()
    s.emit({"a": 1})
    assert s.drain() == [{"a": 1}]
    assert s.drain() == []
    assert s.records() == []


def test_ring_buffer_bounds_and_counts_drops():
    s = RingBufferSink(capacity=3)
    for i in range(10):
        s.emit({"i": i})
    assert [r["i"] for r in s.records()] == [7, 8, 9]
    assert s.dropped == 7


def test_ring_buffer_rejects_silly_capacity():
    with pytest.raises(ValueError):
        RingBufferSink(0)


def test_jsonl_file_round_trip(tmp_path):
    path = str(tmp_path / "t.jsonl")
    t = Tracer(JsonlFileSink(path), record_wall=False)
    t.event("e", x=1)
    with t.span("s"):
        pass
    t.sinks[0].close()
    records = read_trace(path)
    assert [r["name"] for r in records] == ["e", "s"]
    with open(path) as fh:
        first = fh.readline()
    assert json.loads(first) == {"kind": "meta", "schema": SCHEMA_VERSION}


def test_write_trace_read_trace_round_trip(tmp_path):
    path = str(tmp_path / "t.jsonl")
    original = [
        {"kind": "event", "seq": 0, "shard": None, "name": "a", "args": {}},
        {"kind": "span", "seq": 1, "end_seq": 2, "shard": 1, "name": "b",
         "args": {"n": 3}},
    ]
    write_trace(path, original)
    assert read_trace(path) == original


def test_read_trace_errors(tmp_path):
    with pytest.raises(ReproError, match="cannot read"):
        read_trace(str(tmp_path / "missing.jsonl"))
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    with pytest.raises(ReproError, match="not a JSON trace record"):
        read_trace(str(bad))
    wrong = tmp_path / "wrong.jsonl"
    wrong.write_text('{"kind":"meta","schema":"repro.trace/99"}\n')
    with pytest.raises(ReproError, match="unsupported"):
        read_trace(str(wrong))
    scalar = tmp_path / "scalar.jsonl"
    scalar.write_text("[1, 2]\n")
    with pytest.raises(ReproError, match="not an object"):
        read_trace(str(scalar))


# --------------------------------------------------------------------------
# recorder & chunker
# --------------------------------------------------------------------------


def test_trace_recorder_defaults_to_bounded_ring():
    rec = TraceRecorder(capacity=4)
    sink = rec.tracer.sinks[0]
    assert isinstance(sink, RingBufferSink) and sink.capacity == 4
    rec.tracer.event("e")
    assert rec.records()[0]["name"] == "e"


def test_trace_recorder_unbounded_and_custom():
    assert isinstance(TraceRecorder(capacity=None).tracer.sinks[0], ListSink)
    t = Tracer(ListSink())
    assert TraceRecorder(t).tracer is t


def test_attached_tracer_discovery():
    rec = TraceRecorder()
    assert attached_tracer((object(), rec)) is rec.tracer
    assert attached_tracer(()) is None


def test_span_chunker_rotates_deterministically():
    t = Tracer(ListSink(), record_wall=False)
    chunks = SpanChunker(t, "loop", every=3)
    for _ in range(7):
        chunks.tick()
    chunks.close()
    spans = _records(t)
    assert [s["args"] for s in spans] == [
        {"index": 0, "ticks": 3},
        {"index": 1, "ticks": 3},
        {"index": 2, "ticks": 1},
    ]
    # close with nothing open is a no-op
    chunks.close()
    assert len(_records(t)) == 3
