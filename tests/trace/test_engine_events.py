"""Engine-site trace coverage beyond the core drivers: checkpoint
writes, degradation-ladder escalations, fold joins, observer eviction."""

from __future__ import annotations

from repro.explore import ExploreOptions, Observer, explore
from repro.programs.corpus import CORPUS
from repro.resilience import Budgets, Checkpointer, explore_resilient
from repro.trace import TraceRecorder


def test_checkpoint_writes_are_spans(tmp_path):
    rec = TraceRecorder(capacity=None, record_wall=False)
    ckpt = Checkpointer(str(tmp_path / "run.ckpt"), every=10)
    explore(
        CORPUS["philosophers_3"](),
        "stubborn",
        checkpointer=ckpt,
        observers=(rec,),
    )
    writes = [r for r in rec.records() if r["name"] == "checkpoint.write"]
    assert writes
    assert [w["args"]["index"] for w in writes] == list(range(len(writes)))
    assert all(w["args"]["ok"] for w in writes)


def test_ladder_escalations_are_events():
    rec = TraceRecorder(capacity=None, record_wall=False)
    rr = explore_resilient(
        CORPUS["philosophers_3"](),
        budgets=Budgets(max_configs=30),
        start="stubborn",
        observers=(rec,),
    )
    assert not rr.exact
    records = rec.records()
    escalations = [
        r for r in records if r["name"] == "resilience.escalation"
    ]
    assert [
        (e["args"]["src"], e["args"]["dst"]) for e in escalations
    ] == [(e.from_rung, e.to_rung) for e in rr.escalations]
    (answered,) = [
        r for r in records if r["name"] == "resilience.answered"
    ]
    assert answered["args"] == {"rung": rr.rung, "exact": False}


def test_fold_joins_are_spans():
    from repro.absdomain import AbsValueDomain, IntervalDomain
    from repro.abstraction import AbsOptions, fold_explore, taylor_key
    from repro.trace import ListSink, Tracer

    tracer = Tracer(ListSink(), record_wall=False)
    fold_explore(
        CORPUS["fig3_folding"](),
        AbsOptions(dom=AbsValueDomain(IntervalDomain())),
        key_fn=taylor_key,
        tracer=tracer,
    )
    joins = [
        r for r in tracer.sinks[0].records() if r["name"] == "fold.join"
    ]
    assert joins
    assert all(
        "widen" in j["args"] and j["args"]["updates"] >= 1 for j in joins
    )


def test_ladder_exact_answer_is_an_event():
    rec = TraceRecorder(capacity=None, record_wall=False)
    rr = explore_resilient(
        CORPUS["mutex_counter"](), start="stubborn", observers=(rec,)
    )
    assert rr.exact
    (answered,) = [
        r for r in rec.records() if r["name"] == "resilience.answered"
    ]
    assert answered["args"] == {"rung": "stubborn", "exact": True}


def test_observer_eviction_is_an_event():
    class Crashy(Observer):
        def on_edge(self, graph, src, dst, actions):
            raise RuntimeError("boom")

    rec = TraceRecorder(capacity=None, record_wall=False)
    explore(
        CORPUS["mutex_counter"](), "stubborn", observers=(Crashy(), rec)
    )
    (evicted,) = [
        r for r in rec.records()
        if r["name"] == "explore.observer_evicted"
    ]
    assert evicted["args"] == {"observer": "Crashy", "method": "on_edge"}


def test_truncation_is_an_event():
    rec = TraceRecorder(capacity=None, record_wall=False)
    r = explore(
        CORPUS["philosophers_3"](),
        options=ExploreOptions(policy="full", max_configs=20),
        observers=(rec,),
    )
    assert r.stats.truncated
    (trunc,) = [
        r2 for r2 in rec.records() if r2["name"] == "explore.truncated"
    ]
    assert trunc["args"]["reason"] == r.stats.truncation_reason == "configs"
