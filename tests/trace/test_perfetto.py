"""Chrome trace-event export (Perfetto / chrome://tracing)."""

import json

from repro.trace import (
    MASTER_TID,
    SCHEMA_VERSION,
    ListSink,
    Tracer,
    strip_wall,
    to_chrome_trace,
    write_chrome_trace,
)


def _sample_records(record_wall=True):
    master = Tracer(ListSink(), record_wall=record_wall)
    with master.span("explore.round", index=0):
        master.event("explore.truncated", reason="demo")
    worker = Tracer(ListSink(), shard=1, record_wall=record_wall)
    with worker.span("stubborn.closure", enabled=3):
        pass
    return master.sinks[0].records() + worker.sinks[0].records()


def test_metadata_names_process_and_tracks():
    doc = to_chrome_trace(_sample_records())
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    named = {(e["name"], e["tid"]): e["args"]["name"] for e in meta}
    assert named[("process_name", MASTER_TID)] == "repro"
    assert named[("thread_name", MASTER_TID)] == "master"
    assert named[("thread_name", 2)] == "shard-1"
    # metadata precedes all timeline events
    phases = [e["ph"] for e in doc["traceEvents"]]
    assert phases[: len(meta)] == ["M"] * len(meta)


def test_span_and_event_phases():
    doc = to_chrome_trace(_sample_records())
    by_name = {e["name"]: e for e in doc["traceEvents"] if e["ph"] != "M"}
    assert by_name["explore.round"]["ph"] == "X"
    assert by_name["explore.truncated"]["ph"] == "i"
    assert by_name["stubborn.closure"]["tid"] == 2
    assert by_name["explore.round"]["tid"] == MASTER_TID
    # original args survive, seq is grafted in
    assert by_name["stubborn.closure"]["args"]["enabled"] == 3
    assert by_name["explore.truncated"]["args"]["reason"] == "demo"
    assert "seq" in by_name["explore.round"]["args"]


def test_wall_clock_becomes_ts_and_dur():
    doc = to_chrome_trace(_sample_records(record_wall=True))
    span = next(
        e for e in doc["traceEvents"] if e["name"] == "explore.round"
    )
    assert span["ts"] >= 0 and span["dur"] >= 1


def test_seq_fallback_when_wall_stripped():
    records = [strip_wall(r) for r in _sample_records(record_wall=True)]
    doc = to_chrome_trace(records)
    span = next(
        e for e in doc["traceEvents"] if e["name"] == "explore.round"
    )
    # master trace: round span seq=0, truncated event seq=1, end_seq=2
    assert span["ts"] == 0 and span["dur"] == 2
    instant = next(
        e for e in doc["traceEvents"] if e["name"] == "explore.truncated"
    )
    assert instant["ts"] == 1


def test_zero_length_span_renders_one_microsecond():
    t = Tracer(ListSink(), record_wall=False)
    t.end_span(t.begin_span("blip"))
    doc = to_chrome_trace(t.sinks[0].records())
    span = next(e for e in doc["traceEvents"] if e["name"] == "blip")
    assert span["dur"] == 1


def test_meta_records_are_skipped():
    doc = to_chrome_trace(
        [{"kind": "meta", "schema": SCHEMA_VERSION}]
    )
    assert all(e["ph"] == "M" for e in doc["traceEvents"])


def test_document_round_trips_through_json():
    doc = to_chrome_trace(_sample_records())
    assert json.loads(json.dumps(doc)) == doc
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["schema"] == SCHEMA_VERSION


def test_write_chrome_trace_file(tmp_path):
    path = str(tmp_path / "trace.json")
    write_chrome_trace(path, _sample_records())
    with open(path) as fh:
        loaded = json.load(fh)
    assert loaded == to_chrome_trace(_sample_records()) or (
        # wall-clock differs between the two sample constructions;
        # structure must agree
        [e["name"] for e in loaded["traceEvents"]]
        == [e["name"] for e in to_chrome_trace(_sample_records())["traceEvents"]]
    )
