"""HTML run reports: render_report and the `repro report` CLI."""

import json

from repro.cli import main
from repro.explore import explore
from repro.metrics import MetricsObserver
from repro.programs.corpus import CORPUS
from repro.trace import TraceRecorder, render_report


def _run_records():
    rec = TraceRecorder(capacity=None)
    mo = MetricsObserver()
    explore(CORPUS["deadlock_pair"](), "stubborn", observers=(rec, mo))
    return rec.records(), mo.snapshot()


def test_report_is_self_contained_html():
    records, metrics = _run_records()
    doc = render_report(trace_records=records, metrics=metrics)
    assert doc.startswith("<!DOCTYPE html>")
    assert doc.rstrip().endswith("</body></html>")
    # self-contained: no scripts, no external fetches
    assert "<script" not in doc
    assert "http" not in doc.split("</title>")[1]
    for section in ("Outcome", "Span timings", "Events", "Metrics"):
        assert f"<h2>{section}</h2>" in doc


def test_report_outcome_table_matches_trace():
    records, _ = _run_records()
    (done,) = [r for r in records if r["name"] == "explore.done"]
    doc = render_report(trace_records=records)
    assert f"<td class=\"num\">{done['args']['configs']}</td>" in doc
    assert "<td>deadlocks</td>" in doc
    # no metrics supplied → the section degrades to a pointer
    assert "--metrics-out" in doc


def test_report_escapes_hostile_strings():
    records = [
        {
            "kind": "event", "seq": 0, "shard": None,
            "name": "explore.truncated",
            "args": {"reason": "<script>alert(1)</script>"},
        }
    ]
    doc = render_report(
        trace_records=records, title="<b>sneaky & 'title'</b>"
    )
    assert "<script>alert" not in doc
    assert "&lt;script&gt;" in doc
    assert "<b>sneaky" not in doc


def test_report_renders_empty_trace():
    doc = render_report()
    assert doc.startswith("<!DOCTYPE html>")
    assert "0 records" in doc
    assert "No <code>explore.done</code> event" in doc


def test_report_witness_and_escalation_sections():
    records = [
        {"kind": "event", "seq": 0, "shard": None, "name": "witness.found",
         "args": {"target": "deadlock", "length": 2,
                  "steps": ["pid=0 a1", "pid=1 b1"]}},
        {"kind": "event", "seq": 1, "shard": None,
         "name": "resilience.escalation",
         "args": {"src": "stubborn", "dst": "stubborn-proc+coarsen",
                  "reason": "configs"}},
        {"kind": "event", "seq": 2, "shard": None,
         "name": "resilience.answered",
         "args": {"rung": "abstract-fold", "exact": False}},
    ]
    doc = render_report(trace_records=records)
    assert "Witness summary" in doc
    assert "pid=0 a1" in doc
    assert "Escalation trail" in doc
    assert "stubborn-proc+coarsen" in doc
    assert "(approximate)" in doc


# --------------------------------------------------------------------------
# CLI: explore --trace-out/--metrics-out → report → perfetto
# --------------------------------------------------------------------------


def test_cli_explore_report_round_trip(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    metrics = tmp_path / "run-metrics.json"
    out = tmp_path / "run.html"
    perfetto = tmp_path / "run-perfetto.json"
    assert (
        main(
            ["explore", "corpus:deadlock_pair", "--witness", "deadlock",
             "--trace-out", str(trace), "--metrics-out", str(metrics)]
        )
        == 0
    )
    capsys.readouterr()
    # the metrics dump carries its schema header
    dump = json.loads(metrics.read_text())
    assert dump["schema"].startswith("repro.metrics/")
    assert dump["metrics"]["explore.expansions"]["type"] == "counter"

    assert (
        main(
            ["report", str(trace), "--metrics", str(metrics),
             "--out", str(out), "--perfetto", str(perfetto),
             "--title", "deadlock pair"]
        )
        == 0
    )
    printed = capsys.readouterr().out
    assert f"wrote {out}" in printed
    assert "ui.perfetto.dev" in printed
    html = out.read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "<title>deadlock pair</title>" in html
    assert "Witness summary" in html
    assert "<h3>Counters</h3>" in html
    chrome = json.loads(perfetto.read_text())
    assert any(e["ph"] == "X" for e in chrome["traceEvents"])


def test_cli_report_without_metrics(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    out = tmp_path / "run.html"
    assert (
        main(["explore", "corpus:mutex_counter", "--trace-out", str(trace)])
        == 0
    )
    capsys.readouterr()
    assert main(["report", str(trace), "--out", str(out)]) == 0
    assert "--metrics-out" in out.read_text()


def test_cli_report_missing_trace_exits_2(tmp_path, capsys):
    code = main(["report", str(tmp_path / "nope.jsonl")])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error: cannot read trace")
    assert err.count("\n") == 1


def test_cli_report_bad_metrics_exits_2(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    assert (
        main(["explore", "corpus:mutex_counter", "--trace-out", str(trace)])
        == 0
    )
    capsys.readouterr()
    bad = tmp_path / "bad.json"
    bad.write_text('{"no": "metrics"}')
    assert main(["report", str(trace), "--metrics", str(bad)]) == 2
    assert "missing 'metrics' key" in capsys.readouterr().err


def test_cli_trace_out_unwritable_exits_2(tmp_path, capsys):
    target = tmp_path / "no-such-dir" / "t.jsonl"
    code = main(
        ["explore", "corpus:mutex_counter", "--trace-out", str(target)]
    )
    assert code == 2
    assert "cannot write trace" in capsys.readouterr().err


def test_cli_metrics_out_unwritable_exits_2(tmp_path, capsys):
    target = tmp_path / "no-such-dir" / "m.json"
    code = main(
        ["explore", "corpus:mutex_counter", "--metrics-out", str(target)]
    )
    assert code == 2
    assert "cannot write metrics" in capsys.readouterr().err


def test_cli_parallel_trace_carries_shard_records(tmp_path, capsys):
    trace = tmp_path / "par.jsonl"
    assert (
        main(
            ["explore", "corpus:philosophers_3", "--jobs", "2",
             "--trace-out", str(trace)]
        )
        == 0
    )
    capsys.readouterr()
    from repro.trace import read_trace

    records = read_trace(str(trace))
    shards = {r["shard"] for r in records}
    assert None in shards and 0 in shards
    assert any(r["name"] == "parallel.merge" for r in records)


def test_report_progress_timeline_section():
    frames = [
        {"schema": "repro.progress/1", "kind": "progress", "seq": i,
         "phase": "explore", "configs": i * 10, "edges": i * 12,
         "frontier": 5, "wall_ms": i * 100.0}
        for i in range(120)
    ]
    html = render_report(progress_frames=frames)
    assert "Progress timeline" in html
    assert "120 frames recorded" in html  # sampled table says what it hid


def test_report_without_frames_omits_timeline_rows():
    html = render_report()
    assert "Progress timeline" not in html


def test_report_dropped_spans_warning():
    silent = render_report(metrics={"trace.dropped_spans": {"value": 0}})
    assert "dropped" not in silent.lower()
    noisy = render_report(metrics={"trace.dropped_spans": {"value": 7}})
    assert "7" in noisy and "dropped" in noisy.lower()
