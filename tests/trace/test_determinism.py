"""Trace determinism: the acceptance suite for the tracing subsystem.

Wall-clock aside (stripped by :func:`canonical_lines`), a trace is a
pure function of (program, options, backend): repeated runs are
byte-identical, and the serial and parallel backends agree on every
backend-neutral record (``explore.done``) and on the multiset of
per-expansion work spans (``stubborn.closure``)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.explore import ExploreOptions, explore
from repro.trace import RingBufferSink, TraceRecorder, canonical_lines
from repro.programs.corpus import CORPUS


def _trace(name, *, jobs=0, policy="stubborn", coarsen=False, **opts):
    rec = TraceRecorder(capacity=None, record_wall=False)
    options = ExploreOptions(
        policy=policy,
        coarsen=coarsen,
        **({"backend": "parallel", "jobs": jobs} if jobs else {}),
        **opts,
    )
    result = explore(CORPUS[name](), options=options, observers=(rec,))
    return result, rec.records()


@pytest.mark.parametrize("name", ["philosophers_3", "mutex_counter"])
def test_repeated_serial_runs_byte_identical(name):
    _, a = _trace(name)
    _, b = _trace(name)
    assert canonical_lines(a) == canonical_lines(b)


@pytest.mark.parametrize("name", ["philosophers_3", "deadlock_pair"])
def test_repeated_parallel_runs_byte_identical(name):
    _, a = _trace(name, jobs=2)
    _, b = _trace(name, jobs=2)
    assert canonical_lines(a) == canonical_lines(b)


def test_wall_clock_strips_to_identical_bytes():
    # record_wall=True traces differ in wall_* only; stripping recovers
    # the deterministic residue
    rec_a = TraceRecorder(capacity=None, record_wall=True)
    rec_b = TraceRecorder(capacity=None, record_wall=True)
    prog = CORPUS["mutex_counter"]
    explore(prog(), "stubborn", observers=(rec_a,))
    explore(prog(), "stubborn", observers=(rec_b,))
    assert canonical_lines(rec_a.records()) == canonical_lines(rec_b.records())


def _named(records, name):
    return Counter(
        (r["name"], tuple(sorted(r["args"].items())))
        for r in records
        if r["name"] == name
    )


def _done_args(records):
    (done,) = [r for r in records if r["name"] == "explore.done"]
    return done["args"]


@pytest.mark.parametrize("jobs", [1, 2, 4])
@pytest.mark.parametrize("name", ["philosophers_3", "mutex_counter"])
def test_serial_and_parallel_traces_agree(name, jobs):
    ser_result, ser = _trace(name)
    par_result, par = _trace(name, jobs=jobs)
    # the summary event is backend-neutral by design
    assert _done_args(ser) == _done_args(par)
    assert _done_args(ser)["configs"] == ser_result.stats.num_configs
    # same expansions → same multiset of closure spans (scheduling moves
    # them between shards, never changes their content)
    assert _named(ser, "stubborn.closure") == _named(par, "stubborn.closure")
    assert par_result.stats.num_configs == ser_result.stats.num_configs


def test_parallel_records_carry_shard_tags():
    _, records = _trace("philosophers_3", jobs=2)
    shards = {r["shard"] for r in records}
    assert None in shards  # master spans
    assert {0, 1} <= shards  # both workers contributed
    # worker records are grouped per (round, shard) and seq-ordered
    # within each group
    last_by_shard: dict = {}
    for r in records:
        s = r["shard"]
        if s is None:
            continue
        # spans sort by end_seq (emission order); events by seq
        key = r.get("end_seq", r["seq"])
        prev = last_by_shard.get(s)
        if prev is not None and key < prev:
            # a smaller seq after a larger one is fine only at a round
            # boundary where the worker trace restarted — our workers
            # never restart, so this must not happen
            pytest.fail(f"shard {s} records out of seq order")
        last_by_shard[s] = key


def test_coarsen_and_sleep_spans_deterministic():
    _, a = _trace("philosophers_3", coarsen=True, sleep=True)
    _, b = _trace("philosophers_3", coarsen=True, sleep=True)
    assert canonical_lines(a) == canonical_lines(b)
    names = {r["name"] for r in a}
    assert "coarsen.fuse" in names
    assert "explore.round" in names


def test_ring_buffer_bounds_trace_memory():
    rec = TraceRecorder(capacity=16, record_wall=False)
    result = explore(CORPUS["philosophers_3"](), "stubborn", observers=(rec,))
    records = rec.records()
    assert len(records) == 16
    sink = rec.tracer.sinks[0]
    assert isinstance(sink, RingBufferSink)
    assert sink.dropped > 0
    # the window keeps the most recent records — the done event survives
    assert records[-1]["name"] == "explore.done"
    assert not result.stats.truncated


def test_zero_cost_when_unattached():
    # without a TraceRecorder no tracer exists and results are identical
    prog = CORPUS["philosophers_3"]
    plain = explore(prog(), "stubborn", coarsen=True)
    rec = TraceRecorder(capacity=None)
    traced = explore(prog(), "stubborn", coarsen=True, observers=(rec,))
    assert plain.final_stores() == traced.final_stores()
    assert plain.stats.num_configs == traced.stats.num_configs
    assert plain.stats.num_edges == traced.stats.num_edges
    assert len(rec.records()) > 0


def test_round_chunks_cover_every_expansion():
    result, records = _trace("philosophers_3", policy="full")
    chunks = [r for r in records if r["name"] == "explore.round"]
    assert [c["args"]["index"] for c in chunks] == list(range(len(chunks)))
    assert sum(c["args"]["ticks"] for c in chunks) == result.stats.expansions
