"""The framework on classic shared-variable synchronization algorithms —
the paper's §1 motivation: these MUST be programmable and analyzable."""

import pytest

from repro.explore import explore
from repro.programs.classic import (
    barrier,
    peterson,
    peterson_broken,
    producer_consumer,
)


# -- Peterson -----------------------------------------------------------------


def test_peterson_mutual_exclusion_holds():
    r = explore(peterson(), "full")
    assert r.stats.num_faults == 0  # the assertion never fails
    assert r.stats.num_deadlocks == 0
    # both processes complete in every terminal configuration
    prog = peterson()
    r = explore(prog, "full")
    assert r.global_values("done0", "done1") == {(1, 1)}


def test_peterson_verified_under_reduction():
    prog = peterson()
    full = explore(prog, "full")
    red = explore(prog, "stubborn", coarsen=True, sleep=True)
    assert red.final_stores() == full.final_stores()
    assert red.stats.num_faults == 0


def test_peterson_broken_violation_found():
    r = explore(peterson_broken(), "full")
    assert r.stats.num_faults > 0
    assert any("assert" in m for m in r.fault_messages())


def test_peterson_broken_witness_replays():
    from repro.analyses.witness import fault_witness, replay

    prog = peterson_broken()
    r = explore(prog, "full")
    w = fault_witness(r)
    assert w is not None
    final = replay(prog, w)
    assert final.fault is not None


def test_peterson_races_are_on_protocol_variables():
    from repro.analyses.races import races

    prog = peterson()
    rs = races(prog, explore(prog, "full"))
    locs = {r.loc for r in rs}
    # the protocol variables race by design; the protected counter and
    # the turn... incrit must NOT be among simultaneously-enabled
    # conflicting accesses
    assert ("g", "incrit") not in locs


# -- producer / consumer --------------------------------------------------------


@pytest.mark.parametrize("items", [1, 2, 3])
def test_producer_consumer_delivers_everything(items):
    prog = producer_consumer(items)
    r = explore(prog, "full")
    assert r.stats.num_deadlocks == 0
    assert r.stats.num_faults == 0
    expected = sum(range(1, items + 1))
    assert r.global_values("out") == {(expected,)}


def test_producer_consumer_under_reduction():
    prog = producer_consumer(2)
    full = explore(prog, "full")
    red = explore(prog, "stubborn", coarsen=True)
    assert red.final_stores() == full.final_stores()


def test_producer_consumer_dependences_alternate():
    from repro.analyses.dependence import dependences

    prog = producer_consumer(1)
    deps = dependences(prog, explore(prog, "full"))
    flows = {(d.src, d.dst) for d in deps.deps if d.kind == "flow" and d.cross_thread}
    assert ("pb", "cb") in flows  # data flows producer → consumer
    assert ("pf", "cw") in flows  # the full-flag handshake


# -- barrier ---------------------------------------------------------------------


@pytest.mark.parametrize("threads", [2, 3])
def test_barrier_orders_pre_before_post(threads):
    prog = barrier(threads)
    r = explore(prog, "full")
    assert r.stats.num_faults == 0  # no post-work saw a missing pre-work
    assert r.stats.num_deadlocks == 0
    names = [f"post{t}" for t in range(threads)]
    assert r.global_values(*names) == {tuple(1 for _ in names)}


def test_barrier_under_reduction():
    prog = barrier(2)
    full = explore(prog, "full")
    red = explore(prog, "stubborn", coarsen=True, sleep=True)
    assert red.final_stores() == full.final_stores()
    assert red.stats.num_configs <= full.stats.num_configs


def test_barrier_mhp_excludes_cross_phase():
    from repro.analyses.mhp import mhp_dynamic

    prog = barrier(2)
    pairs = mhp_dynamic(prog, explore(prog, "full"))
    # thread 0's post-assignment can never be poised alongside thread
    # 1's pre-assignment: the barrier separates the phases
    assert frozenset(("b0q", "b1p")) not in pairs
