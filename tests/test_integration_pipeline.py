"""End-to-end pipeline test: one nontrivial program through every
subsystem — exploration (all policies), every §5/§7 analysis, abstract
folding, the optimizer, and witness replay — with cross-checked facts.
"""

from repro.abstraction import taylor_explore
from repro.analyses.constprop import constants_at
from repro.analyses.dependence import dependences
from repro.analyses.lifetime import lifetimes
from repro.analyses.memplace import placements
from repro.analyses.mhp import mhp_dynamic
from repro.analyses.optimize import optimize_program
from repro.analyses.races import races
from repro.analyses.sideeffects import side_effects
from repro.analyses.witness import outcome_witness, replay
from repro.explore import ExploreOptions, explore
from repro.lang import parse_program
from repro.semantics import StepOptions, run_program

SOURCE = """
// A work queue: the producer fills a heap buffer cell by cell under a
// lock; the consumer drains it; a monitor thread samples progress.
var lock = 0; var buf = 0; var produced = 0; var consumed = 0;
var sum = 0; var sample = 0;

func push(v) {
    acquire(lock);
    w1: buf[produced] = v;
    w2: produced = produced + 1;
    release(lock);
}

func pop() {
    var v = 0;
    // wait OUTSIDE the lock: produced only grows, so the guard stays
    // true; waiting inside would deadlock the producer
    r0: assume(consumed < produced);
    acquire(lock);
    r1: v = buf[consumed];
    r2: consumed = consumed + 1;
    release(lock);
    return v;
}

func main() {
    var total = 0;
    alloc: buf = malloc(2);
    cobegin
    {
        p1: push(10);
        p2: push(32);
    }
    {
        var a = 0; var b = 0;
        c1: a = pop();
        c2: b = pop();
        c3: sum = a + b;
    }
    {
        m1: sample = produced;
    }
    fin: total = sum;
}
"""


def _program():
    return parse_program(SOURCE)


def test_single_outcome_for_sum():
    prog = _program()
    result = explore(prog, "full")
    assert result.stats.num_deadlocks == 0
    assert result.stats.num_faults == 0
    assert result.global_values("sum") == {(42,)}
    # the monitor may sample 0, 1 or 2
    assert result.global_values("sample") == {(0,), (1,), (2,)}


def test_reductions_agree():
    prog = _program()
    full = explore(prog, "full")
    for policy, co, sl in [
        ("stubborn", False, False),
        ("stubborn", True, False),
        ("stubborn", True, True),
        ("full", True, False),
    ]:
        red = explore(prog, policy, coarsen=co, sleep=sl)
        assert red.final_stores() == full.final_stores(), (policy, co, sl)
        assert red.stats.num_configs <= full.stats.num_configs


def test_analyses_fact_pack(analysis_result):
    prog = _program()
    result = analysis_result(prog)

    eff = side_effects(prog, result)
    assert ("site", "alloc") in eff.by_func["push"].mod
    assert ("site", "alloc") in eff.by_func["pop"].ref
    assert ("g", "sum") not in eff.by_func["push"].mod

    deps = dependences(prog, result)
    cross_flows = {
        (d.src, d.dst)
        for d in deps.deps
        if d.kind == "flow" and d.cross_thread and d.loc == ("site", "alloc")
    }
    assert ("w1", "r1") in cross_flows  # buffer cells flow producer→consumer

    found = races(prog, result)
    # produced is read by the monitor without the lock: a real anomaly
    assert any(r.loc == ("g", "produced") for r in found)
    # the buffer itself is lock-protected and orderd by the count guard
    assert not any(r.loc == ("site", "alloc") for r in found)

    lts = lifetimes(prog, result)
    place = placements(lts)
    assert not place["alloc"].thread_local  # the buffer is shared

    mhp = mhp_dynamic(prog, result)
    assert frozenset(("w1", "m1")) in mhp  # producer and monitor overlap


def test_abstract_and_optimizer_layers():
    prog = _program()
    folded = taylor_explore(prog)
    concrete = explore(prog, "full")
    for cfg in concrete.graph.configs:
        if cfg.fault is None:
            assert folded.covers_config(cfg)

    cp = constants_at(prog, folded)
    # the buffer summary joins {0, 10, 32} (weak updates on the 2-cell
    # object), so `sum` is not a flat-domain constant — but the lock
    # is provably free again after the join
    assert cp.constant("fin", "lock") == 0
    assert cp.constant("fin", "sum") is None

    opt = optimize_program(prog)
    after = explore(parse_program(opt.source), "full")
    assert after.final_stores() == concrete.final_stores()


def test_witness_for_each_sample_value():
    prog = _program()
    result = explore(prog, "full")
    for sample in (0, 1, 2):
        w = outcome_witness(result, sample=sample)
        assert w is not None, sample
        final = replay(prog, w)
        assert final.globals[prog.global_index("sample")] == sample


def test_scheduled_runs_within_explored():
    prog = _program()
    result = explore(prog, "full")
    for seed in range(8):
        run = run_program(prog, scheduler="random", seed=seed)
        assert run.config.result_store() in result.final_stores()
