"""Utility-module tests: ordered collections, worklists, fixpoints,
errors, and the sleep-set primitives."""

import pytest

from repro.explore.expansion import Expansion
from repro.explore.sleepsets import SleepEntry, entry_of, independent, transition_key
from repro.semantics.config import Frame, Process
from repro.util.errors import LexError, ReproError, RuntimeFault, SourceError
from repro.util.fixpoint import Worklist, fixpoint_map
from repro.util.ordered import OrderedSet, stable_unique


# -- OrderedSet ---------------------------------------------------------------


def test_ordered_set_insertion_order():
    s = OrderedSet([3, 1, 2, 1])
    assert s.as_list() == [3, 1, 2]


def test_ordered_set_add_reports_novelty():
    s = OrderedSet()
    assert s.add(1)
    assert not s.add(1)


def test_ordered_set_discard():
    s = OrderedSet([1, 2])
    s.discard(1)
    s.discard(99)  # no-op
    assert s.as_list() == [2]


def test_ordered_set_eq():
    assert OrderedSet([1, 2]) == OrderedSet([2, 1])
    assert OrderedSet([1]) == {1}


def test_ordered_set_len_bool_contains():
    s = OrderedSet([1])
    assert len(s) == 1 and s and 1 in s
    assert not OrderedSet()


def test_stable_unique():
    assert stable_unique([2, 1, 2, 3, 1]) == [2, 1, 3]


# -- Worklist ------------------------------------------------------------------


def test_worklist_dedupes():
    wl = Worklist([1, 2])
    wl.push(1)
    assert len(wl) == 2
    assert wl.pop() == 1
    wl.push(1)  # re-push after pop is allowed
    assert len(wl) == 2


def test_worklist_fifo():
    wl = Worklist()
    wl.push("a")
    wl.push("b")
    assert wl.pop() == "a"


# -- fixpoint_map ----------------------------------------------------------------


def test_fixpoint_transitive_closure():
    # reachability in a tiny graph
    succs = {1: [2], 2: [3], 3: [], 4: [1]}
    preds = {1: [4], 2: [1], 3: [2], 4: []}

    result = fixpoint_map(
        keys=[1, 2, 3, 4],
        init=lambda k: frozenset(),
        deps=lambda k: preds[k],
        transfer=lambda k, get: frozenset(succs[k])
        | frozenset().union(*(get(s) for s in succs[k])) if succs[k] else frozenset(),
    )
    assert result[4] == {1, 2, 3}
    assert result[3] == frozenset()


# -- errors ------------------------------------------------------------------------


def test_error_hierarchy():
    assert issubclass(LexError, SourceError)
    assert issubclass(SourceError, ReproError)
    assert issubclass(RuntimeFault, ReproError)


def test_source_error_location_formatting():
    e = LexError("bad", 3, 7)
    assert "line 3" in str(e) and "col 7" in str(e)


def test_runtime_fault_fields():
    f = RuntimeFault("kindly", "details here")
    assert f.kind == "kindly" and "details here" in str(f)


# -- sleep-set primitives -----------------------------------------------------------


def _proc(pid, pc=0):
    return Process(pid=pid, frames=(Frame(func="main", pc=pc, locals=()),))


def _exp(pid, reads=(), writes=(), pc=0):
    return Expansion(
        proc=_proc(pid, pc), enabled=True, reads=tuple(reads), writes=tuple(writes)
    )


def test_transition_key_tracks_position():
    assert transition_key(_proc((0, 0), 1)) != transition_key(_proc((0, 0), 2))
    assert transition_key(_proc((0, 0), 1)) == transition_key(_proc((0, 0), 1))


def test_independent_requires_different_pids():
    a = entry_of(_exp((0, 0)))
    assert not independent(a, _exp((0, 0)))


def test_independent_write_conflicts():
    a = entry_of(_exp((0, 0), writes=[("g", 0)]))
    assert not independent(a, _exp((0, 1), reads=[("g", 0)]))
    assert not independent(a, _exp((0, 1), writes=[("g", 0)]))
    assert independent(a, _exp((0, 1), writes=[("g", 1)]))


def test_independent_read_read_ok():
    a = entry_of(_exp((0, 0), reads=[("g", 0)]))
    assert independent(a, _exp((0, 1), reads=[("g", 0)]))
