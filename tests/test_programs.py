"""Program-corpus and generator tests."""

import pytest

from repro.explore import explore
from repro.programs.corpus import CORPUS, corpus_programs
from repro.programs.philosophers import philosophers, philosophers_source
from repro.programs.synthetic import (
    chain_of_updates,
    identical_tasks,
    local_heavy,
    pointer_heavy,
    sharing_sweep,
)
from repro.semantics import run_program


def test_corpus_compiles():
    progs = corpus_programs()
    assert len(progs) == len(CORPUS)
    for name, prog in progs:
        assert "main" in prog.funcs, name


def test_corpus_sources_attached():
    for name, prog in corpus_programs():
        assert prog.source is not None, name


def test_generators_validate_arguments():
    with pytest.raises(ValueError):
        philosophers(1)
    with pytest.raises(ValueError):
        identical_tasks(0)
    with pytest.raises(ValueError):
        chain_of_updates(0)
    with pytest.raises(ValueError):
        sharing_sweep(0, 1, 1)
    with pytest.raises(ValueError):
        pointer_heavy(1, 0)


def test_philosophers_source_shape():
    src = philosophers_source(3, meals=2)
    assert src.count("acquire") == 3 * 2 * 2
    assert "fork2" in src and "fork3" not in src


def test_philosophers_shared_tally_variant():
    prog = philosophers(2, shared_tally=True)
    r = explore(prog, "full")
    eaten = prog.global_index("eaten")
    done = [g[eaten] for g in r.terminal_globals()]
    assert done == [2]  # both eat exactly once when no deadlock


def test_chain_single_outcome():
    prog = chain_of_updates(4)
    r = explore(prog, "full")
    assert r.global_values("stage") == {(4,)}
    assert r.stats.num_deadlocks == 0


def test_local_heavy_deterministic_sum():
    prog = local_heavy(2, 3)
    run = run_program(prog)
    r = explore(prog, "full")
    assert {(run.global_value(prog, "out"),)} == r.global_values("out")


def test_pointer_heavy_outcome():
    prog = pointer_heavy(2, 2)
    r = explore(prog, "full")
    # each thread adds (steps) to out through its private object
    assert r.global_values("out") == {(4,)}


def test_sharing_sweep_terminates_cleanly():
    prog = sharing_sweep(2, 4, 2)
    r = explore(prog, "full")
    assert r.stats.num_deadlocks == 0
    assert r.stats.num_faults == 0
