"""CLI tests."""

import pytest

from repro.cli import main


def test_corpus_lists(capsys):
    assert main(["corpus"]) == 0
    out = capsys.readouterr().out
    assert "fig2_shasha_snir" in out


def test_parse_corpus(capsys):
    assert main(["parse", "corpus:fig2_shasha_snir"]) == 0
    assert "ICobegin" in capsys.readouterr().out


def test_parse_file(tmp_path, capsys):
    f = tmp_path / "p.cb"
    f.write_text("var g = 0; func main() { g = 1; }")
    assert main(["parse", str(f)]) == 0


def test_run(capsys):
    assert main(["run", "corpus:mutex_counter"]) == 0
    out = capsys.readouterr().out
    assert "terminated" in out and "'count': 2" in out


def test_run_trace(capsys):
    assert main(["run", "corpus:fig2_shasha_snir", "--trace"]) == 0
    assert "pid=" in capsys.readouterr().out


def test_run_fault_exit_code(tmp_path):
    f = tmp_path / "bad.cb"
    f.write_text("var g = 0; func main() { g = 1 / g; }")
    assert main(["run", str(f)]) == 1


def test_explore(capsys):
    assert main(["explore", "corpus:fig5_locality", "--coarsen"]) == 0
    out = capsys.readouterr().out
    assert "configs=" in out and "outcome" in out


def test_explore_policies(capsys):
    for policy in ("full", "stubborn", "stubborn-proc"):
        assert main(["explore", "corpus:racy_counter", "--policy", policy]) == 0


def test_bench_writes_schema_versioned_json(tmp_path, capsys):
    import json

    out = tmp_path / "BENCH_explore.json"
    assert (
        main(
            [
                "bench",
                "--out", str(out),
                "--programs", "fig2_shasha_snir", "mutex_counter",
            ]
        )
        == 0
    )
    doc = json.loads(out.read_text())
    assert doc["schema"].startswith("repro.bench.explore/")
    assert len(doc["programs"]) == 2
    text = capsys.readouterr().out
    assert "stubborn+coarsen+sleep" in text
    assert f"wrote {out}" in text


def test_bench_profile_writes_pstats_artifact(tmp_path, capsys):
    import pstats

    out = tmp_path / "BENCH_explore.json"
    assert (
        main(
            [
                "bench",
                "--out", str(out),
                "--programs", "fig2_shasha_snir",
                "--profile",
            ]
        )
        == 0
    )
    artifact = tmp_path / "BENCH_explore.pstats"
    assert artifact.exists()
    text = capsys.readouterr().out
    assert f"wrote {artifact}" in text
    # a loadable profile whose hot path includes the expansion engine
    stats = pstats.Stats(str(artifact))
    funcs = {func for (_file, _line, func) in stats.stats}
    assert "explore" in funcs


def test_explore_no_memo_matches_default(capsys):
    assert main(["explore", "corpus:philosophers_3", "--coarsen"]) == 0
    with_memo = capsys.readouterr().out
    assert (
        main(["explore", "corpus:philosophers_3", "--coarsen", "--no-memo"])
        == 0
    )
    without = capsys.readouterr().out
    # identical headline line: configs/edges/terminals are memo-invisible
    assert with_memo.splitlines()[0] == without.splitlines()[0]


def test_analyze(capsys):
    assert main(["analyze", "corpus:example8_pointers"]) == 0
    out = capsys.readouterr().out
    assert "side effects" in out and "placement" in out


def test_fold(capsys):
    assert main(["fold", "corpus:fig3_folding", "--domain", "interval"]) == 0
    assert "folded states=" in capsys.readouterr().out


def test_fold_clans(capsys):
    assert main(["fold", "corpus:identical_tasks_3", "--clans"]) == 0


def test_demo(capsys):
    assert main(["demo", "racy_counter"]) == 0
    assert "anomalies" in capsys.readouterr().out


def test_dot_output(capsys):
    assert main(["dot", "corpus:racy_counter"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph") and "palegreen" in out


def test_optimize_command(capsys):
    assert main(["optimize", "corpus:intro_busywait_loop"]) == 0
    out = capsys.readouterr().out
    assert "r = 42;" in out and "while (s == 0)" in out


def test_explore_witness_flag(capsys):
    assert main(["explore", "corpus:deadlock_pair", "--witness", "deadlock"]) == 0
    out = capsys.readouterr().out
    assert "shortest execution" in out and "a1" in out


def test_fold_kset_domain(capsys):
    assert main(["fold", "corpus:fig3_folding", "--domain", "kset"]) == 0
    assert "folded states=" in capsys.readouterr().out


def test_unknown_corpus_name():
    with pytest.raises(SystemExit):
        main(["parse", "corpus:nope"])


def test_parse_error_reported(tmp_path, capsys):
    f = tmp_path / "bad.cb"
    f.write_text("func main() { x = ; }")
    assert main(["parse", str(f)]) == 2
    assert "error" in capsys.readouterr().err


def test_parse_error_carries_location(tmp_path, capsys):
    f = tmp_path / "bad.cb"
    f.write_text("var g = 0;\nfunc main() { g = ; }")
    assert main(["parse", str(f)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error: line 2")
    assert err.count("\n") == 1  # one line, no traceback


def test_resolve_error_carries_location(tmp_path, capsys):
    f = tmp_path / "bad.cb"
    f.write_text("func main() {\n  undeclared = 1;\n}")
    assert main(["explore", str(f)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error: line 2")
    assert "undeclared" in err


def test_compile_error_carries_location(tmp_path, capsys):
    f = tmp_path / "bad.cb"
    f.write_text(
        "var g = 0;\nfunc main() {\n  cobegin\n  { return 1; }\n  { g = 1; }\n}"
    )
    assert main(["explore", str(f)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error: line 4")
    assert "cobegin" in err


def test_bench_unknown_program_one_line_error(tmp_path, capsys):
    out = tmp_path / "bench.json"
    assert main(["bench", "--programs", "nope", "--out", str(out)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error: unknown corpus programs: nope")
    assert not out.exists()


def test_explore_checkpoint_resume_round_trip(tmp_path, capsys):
    ckpt = tmp_path / "phil.ckpt"
    base = ["explore", "corpus:philosophers_3", "--policy", "stubborn"]
    assert main(base + ["--checkpoint", str(ckpt), "--checkpoint-every", "5"]) == 0
    first = capsys.readouterr().out
    assert ckpt.exists()
    assert main(base + ["--resume", str(ckpt)]) == 0
    second = capsys.readouterr().out
    assert " resumed" in second
    # identical final stats either way
    assert second.replace(" resumed", "") == first


def test_explore_resume_mismatch_exits_2(tmp_path, capsys):
    ckpt = tmp_path / "phil.ckpt"
    assert (
        main(
            [
                "explore", "corpus:philosophers_3", "--policy", "stubborn",
                "--checkpoint", str(ckpt), "--checkpoint-every", "5",
            ]
        )
        == 0
    )
    capsys.readouterr()
    code = main(
        ["explore", "corpus:mutex_counter", "--policy", "stubborn",
         "--resume", str(ckpt)]
    )
    assert code == 2
    assert "different program" in capsys.readouterr().err


def test_explore_resilient_prints_trail(capsys):
    assert (
        main(
            ["explore", "corpus:philosophers_3", "--resilient",
             "--max-configs", "30"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "escalated stubborn->stubborn-proc+coarsen: configs" in out
    assert "answered by rung abstract-fold (approximate)" in out
    assert "abstract fold: states=" in out
    assert "TRUNCATED(configs)" in out


def test_explore_resilient_exact_when_budget_fits(capsys):
    assert main(["explore", "corpus:mutex_counter", "--resilient"]) == 0
    out = capsys.readouterr().out
    assert "answered by rung stubborn" in out
    assert "escalated" not in out and "approximate" not in out


def test_explore_truncation_reason_printed(capsys):
    assert (
        main(
            ["explore", "corpus:philosophers_3", "--policy", "full",
             "--max-configs", "20"]
        )
        == 0
    )
    assert "TRUNCATED(configs)" in capsys.readouterr().out


def test_serve_and_submit_round_trip(tmp_path, capsys):
    """`repro serve` + `repro submit` end to end over a unix socket:
    cold run, warm store hit with the same digest, stats, shutdown."""
    import json
    import os
    import threading
    import time

    address = str(tmp_path / "serve.sock")
    store = str(tmp_path / "store")
    server = threading.Thread(
        target=main,
        args=(["serve", address, "--store", store],),
        daemon=True,
    )
    server.start()
    for _ in range(500):
        if os.path.exists(address):
            break
        time.sleep(0.01)

    def submit():
        code = main(
            ["submit", "corpus:mutex_counter", address, "--policy", "stubborn"]
        )
        out = capsys.readouterr().out
        return code, json.loads(out[out.index("{"):])

    code1, r1 = submit()
    code2, r2 = submit()
    assert code1 == code2 == 0
    assert r1["ok"] and r1["cached"] is False
    assert r2["ok"] and r2["cached"] is True
    assert r1["result_digest"] == r2["result_digest"]

    assert main(["submit", address, "--stats"]) == 0
    stats = capsys.readouterr().out
    assert json.loads(stats[stats.index("{"):])["store"]["serve.store_hits"] == 1

    assert main(["submit", address, "--shutdown"]) == 0
    capsys.readouterr()
    server.join(timeout=30)
    assert not server.is_alive()
    # the store outlived the server: entry is on disk for the next one
    assert os.path.isdir(os.path.join(store, "entries"))


def test_submit_unreachable_address_is_one_line_error(tmp_path, capsys):
    missing = str(tmp_path / "nowhere.sock")
    assert main(["submit", missing, "--ping"]) == 2
    err = capsys.readouterr().err
    assert "error:" in err and "nowhere.sock" in err


def test_schedules_generate_write_and_replay(tmp_path, capsys):
    import json

    out = tmp_path / "schedules.json"
    assert (
        main(
            [
                "schedules",
                "corpus:deadlock_pair",
                "--policy",
                "stubborn",
                "--coarsen",
                "--sleep",
                "--out",
                str(out),
            ]
        )
        == 0
    )
    text = capsys.readouterr().out
    assert "classes=" in text and "replay-verified" in text
    document = json.loads(out.read_text())
    assert document["schema"] == "repro.schedules/1"
    assert document["classes"] == len(document["schedules"])

    # the written scheduler script replays standalone
    assert (
        main(["schedules", "corpus:deadlock_pair", "--replay", str(out)]) == 0
    )
    replay_out = capsys.readouterr().out
    assert "ok" in replay_out

    # replaying against the wrong program is a one-line typed error
    assert (
        main(["schedules", "corpus:mutex_counter", "--replay", str(out)]) == 2
    )
    assert "error:" in capsys.readouterr().err


def test_schedules_sample_deterministic(tmp_path, capsys):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    base = [
        "schedules",
        "corpus:philosophers_3",
        "--coarsen",
        "--sample",
        "4",
        "--seed",
        "9",
    ]
    assert main(base + ["--out", str(a)]) == 0
    assert main(base + ["--out", str(b)]) == 0
    capsys.readouterr()
    assert a.read_bytes() == b.read_bytes()


def test_schedules_perfetto_export(tmp_path, capsys):
    import json

    out = tmp_path / "sched.perfetto.json"
    assert (
        main(
            [
                "schedules",
                "corpus:fig2_shasha_snir",
                "--coarsen",
                "--perfetto",
                str(out),
            ]
        )
        == 0
    )
    capsys.readouterr()
    document = json.loads(out.read_text())
    assert any(e.get("ph") == "X" for e in document["traceEvents"])


def test_explore_progress_out_writes_frames(tmp_path, capsys):
    from repro.progress import read_frames

    out = tmp_path / "progress.ndjson"
    assert (
        main(
            [
                "explore",
                "corpus:mutex_counter",
                "--coarsen",
                "--progress-out",
                str(out),
                "--progress-every",
                "10",
            ]
        )
        == 0
    )
    capsys.readouterr()
    frames = read_frames(str(out))
    assert len(frames) >= 2
    assert frames[0]["schema"].startswith("repro.progress/")
    assert frames[-1]["phase"] == "done"


def test_watch_once_renders_file_dashboard(tmp_path, capsys):
    out = tmp_path / "progress.ndjson"
    assert (
        main(
            [
                "explore",
                "corpus:mutex_counter",
                "--coarsen",
                "--progress-out",
                str(out),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert main(["watch", str(out), "--once"]) == 0
    screen = capsys.readouterr().out
    assert "[complete]" in screen and "configs" in screen


def test_report_progress_timeline_section(tmp_path, capsys):
    frames = tmp_path / "progress.ndjson"
    trace = tmp_path / "trace.jsonl"
    html = tmp_path / "report.html"
    assert (
        main(
            [
                "explore",
                "corpus:mutex_counter",
                "--coarsen",
                "--trace-out",
                str(trace),
                "--progress-out",
                str(frames),
                "--progress-every",
                "5",
            ]
        )
        == 0
    )
    assert (
        main(
            [
                "report",
                str(trace),
                "--progress",
                str(frames),
                "--out",
                str(html),
            ]
        )
        == 0
    )
    capsys.readouterr()
    text = html.read_text()
    assert "Progress timeline" in text


def test_submit_follow_flag_parses(tmp_path, capsys):
    # no server: --follow must still produce the one-line error contract
    sock = tmp_path / "nothing.sock"
    assert (
        main(
            ["submit", "corpus:mutex_counter", str(sock), "--follow"]
        )
        == 2
    )
    err = capsys.readouterr().err
    assert err.startswith("error:") and err.count("\n") == 1


def test_store_gc_cli(tmp_path, capsys):
    from repro.serve.store import ResultStore

    root = tmp_path / "store"
    store = ResultStore(str(root))
    store.put_result("victim", {"result_digest": "d", "summary": {}})
    import os

    meta = root / "entries" / "victim" / "meta.json"
    old = os.path.getmtime(meta) - 7200
    os.utime(meta, (old, old))
    assert (
        main(
            ["store", "gc", "--store", str(root), "--max-age", "1h"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "evicted 1 entries" in out
    assert not (root / "entries" / "victim").exists()


def test_store_gc_requires_a_limit(tmp_path, capsys):
    from repro.serve.store import ResultStore

    root = tmp_path / "store"
    ResultStore(str(root))
    assert main(["store", "gc", "--store", str(root)]) == 2
    assert "error:" in capsys.readouterr().err
