"""Algorithm 1 (element-granularity stubborn sets) — direct unit tests
of the closure behaviour on hand-built configurations."""

from repro.analyses.accesses import access_analysis
from repro.explore.algorithm1 import AlgorithmOneSelector
from repro.explore.explorer import ExploreOptions, _expand, explore
from repro.lang import parse_program
from repro.semantics import initial_config, next_infos
from repro.semantics.step import StepOptions


def selector_for(prog):
    return AlgorithmOneSelector(prog, access_analysis(prog))


def expansions_at(prog, config):
    return _expand(prog, config, access_analysis(prog), ExploreOptions())


def after_spawn(prog):
    config = initial_config(prog)
    ni = next_infos(prog, config, StepOptions())[0]
    return ni.succ


def test_spawn_is_singleton():
    prog = parse_program("var g = 0; func main() { cobegin { g = 1; } { g = 2; } }")
    sel = selector_for(prog)
    config = initial_config(prog)
    chosen = sel.select(expansions_at(prog, config))
    assert len(chosen) == 1  # the spawn commutes with nothing


def test_conflicting_writers_both_chosen():
    prog = parse_program("var g = 0; func main() { cobegin { a: g = 1; } { b: g = 2; } }")
    sel = selector_for(prog)
    config = after_spawn(prog)
    exps = expansions_at(prog, config)
    chosen = sel.select(exps)
    labels = {e.actions[0].label for e in chosen}
    assert labels == {"a", "b"}


def test_independent_writers_reduced_to_one():
    prog = parse_program(
        "var x = 0; var y = 0; func main() { cobegin { a: x = 1; } { b: y = 1; } }"
    )
    sel = selector_for(prog)
    config = after_spawn(prog)
    chosen = sel.select(expansions_at(prog, config))
    assert len(chosen) == 1


def test_future_conflict_pulls_process_in():
    # thread b's *future* (not next) action writes x: a set seeded from
    # a's read of x must pull b in (through the D1 control chain);
    # the selector then rightly prefers b1's independent singleton
    prog = parse_program(
        """
        var x = 0; var y = 0; var r = 0;
        func main() {
            cobegin { a: r = x; }
                    { b1: y = 5; b2: x = 1; }
        }
        """
    )
    sel = selector_for(prog)
    config = after_spawn(prog)
    exps = expansions_at(prog, config)
    chosen = sel.select(exps)
    assert {e.actions[0].label for e in chosen} == {"b1"}

    # inspect the closure of the 'a' seed directly
    by_pid = {e.pid: e for e in exps}
    universes = {e.pid: sel._universe(e.proc) for e in exps}
    cur = {e.pid: (e.proc.top.func, e.proc.top.pc) for e in exps}
    a_exp = next(e for e in exps if e.enabled and e.actions[0].label == "a")
    closure_chosen, _size = sel._closure(a_exp, by_pid, universes, cur)
    labels = {e.actions[0].label for e in closure_chosen}
    assert labels == {"a", "b1"}  # a's closure needs thread b expanded


def test_blocked_guard_pulls_writer():
    prog = parse_program(
        """
        var f = 0; var z = 0;
        func main() {
            cobegin { a: assume(f == 1); }
                    { b: f = 1; }
                    { c: z = 1; }
        }
        """
    )
    sel = selector_for(prog)
    config = after_spawn(prog)
    exps = expansions_at(prog, config)
    chosen = sel.select(exps)
    labels = {e.actions[0].label for e in chosen}
    # both {b} (whose conflict closure only adds the *disabled* waiter)
    # and {c} (fully independent) are valid stubborn singletons; the
    # blocked assume must never be expanded alone
    assert len(chosen) == 1
    assert labels <= {"b", "c"}


def test_stats_accumulate():
    prog = parse_program(
        "var g = 0; func main() { cobegin { g = 1; } { g = 2; } }"
    )
    r = explore(prog, "stubborn")
    st = r.stats.stubborn
    assert st.steps > 0
    assert st.chosen_total <= st.enabled_total


def test_selector_deterministic():
    prog = parse_program(
        "var x = 0; var y = 0; func main() { cobegin { x = 1; } { y = 1; } { x = 2; } }"
    )
    config = after_spawn(prog)
    a = selector_for(prog).select(expansions_at(prog, config))
    b = selector_for(prog).select(expansions_at(prog, config))
    assert [e.pid for e in a] == [e.pid for e in b]


def test_joining_parent_universe_excludes_branch_code():
    # regression: a joining parent's instruction universe must not
    # re-include its children's branch bodies — that fabricated
    # conflicts through the parent and wrecked locality (philosophers
    # went from ~2400 to ~290 reduced configs when this was fixed)
    prog = parse_program(
        """
        var x = 0; var y = 0;
        func main() {
            cobegin { a: x = 1; } { b: y = 1; }
            t: x = 2;
        }
        """
    )
    sel = selector_for(prog)
    config = after_spawn(prog)
    exps = expansions_at(prog, config)
    parent = next(e for e in exps if e.pid == (0,))
    uni = sel._universe(parent.proc)
    labels = {
        prog.label_of_pc.get(pt) for pt in uni
    }
    assert "t" in labels  # the join continuation IS in the universe
    assert "a" not in labels and "b" not in labels  # branch bodies are not
    # and the practical effect: independent branches expand singly
    chosen = sel.select(exps)
    assert len(chosen) == 1


def test_lock_contenders_both_in_set():
    prog = parse_program(
        "var l = 0; func main() { cobegin { a: acquire(l); } { b: acquire(l); } }"
    )
    sel = selector_for(prog)
    config = after_spawn(prog)
    chosen = sel.select(expansions_at(prog, config))
    labels = {e.actions[0].label for e in chosen}
    assert labels == {"a", "b"}  # acquires of one lock disable each other
