"""Parallel-worker telemetry: workers record into their own tracer and
registry, ship both back with their final dumps, and the master merges
them — deep per-expansion series survive the process boundary."""

from __future__ import annotations

from repro.explore import ExploreOptions, explore
from repro.metrics import MetricsObserver
from repro.programs.corpus import CORPUS
from repro.trace import TraceRecorder


def _run(name, *, policy="stubborn", coarsen=False, jobs=2, observers=()):
    return explore(
        CORPUS[name](),
        options=ExploreOptions(
            policy=policy, coarsen=coarsen, backend="parallel", jobs=jobs
        ),
        observers=observers,
    )


def test_worker_registries_merge_into_master():
    mo = MetricsObserver()
    r = _run("philosophers_3", observers=(mo,))
    reg = mo.registry
    # per-expansion series recorded inside worker processes
    assert reg.counter("explore.expansions").value == r.stats.expansions
    assert reg.histogram("stubborn.enabled").count == r.stats.stubborn.steps
    assert reg.histogram("stubborn.closure_iterations").count > 0
    # master-side series still present
    assert reg.counter("explore.configs").value == r.stats.num_configs
    assert reg.gauge("graph.configs").value == r.stats.num_configs
    assert reg.counter("parallel.steals").value == r.stats.steals


def test_worker_coarsen_histogram_merges():
    mo = MetricsObserver()
    _run("philosophers_3", coarsen=True, observers=(mo,))
    assert mo.registry.histogram("coarsen.block_len").count > 0


def test_intern_metrics_follow_master_convention():
    # interning happens on the master during merge: misses count every
    # configuration, hits come from the workers' summed dedup counts
    mo = MetricsObserver()
    r = _run("philosophers_3", observers=(mo,))
    assert (
        mo.registry.counter("explore.intern.misses").value
        == r.stats.num_configs
    )


def test_worker_spans_reach_master_trace():
    rec = TraceRecorder(capacity=None, record_wall=False)
    r = _run("philosophers_3", observers=(rec,))
    records = rec.records()
    names = {rc["name"] for rc in records}
    assert {"parallel.spawn", "parallel.run", "parallel.merge",
            "stubborn.closure", "explore.done"} <= names
    closures = [rc for rc in records if rc["name"] == "stubborn.closure"]
    # every closure span came from a worker and carries its shard id
    assert closures and all(rc["shard"] in (0, 1) for rc in closures)
    # one closure span per selection step (terminal configs skip it)
    assert len(closures) == r.stats.stubborn.steps
    # master spans/events carry shard None
    done = next(rc for rc in records if rc["name"] == "explore.done")
    assert done["shard"] is None


def test_worker_records_remap_into_master_seq_space():
    rec = TraceRecorder(capacity=None, record_wall=False)
    _run("philosophers_3", observers=(rec,))
    records = rec.records()
    # the master re-sequences worker batches into its own seq space:
    # seqs stay globally unique, and each shard's stream (batches are
    # emitted in canonical configuration order) closes in order
    seqs = [rc["seq"] for rc in records]
    assert len(seqs) == len(set(seqs))
    for shard in (0, 1):
        closes = [
            rc.get("end_seq", rc["seq"])
            for rc in records
            if rc["shard"] == shard
        ]
        assert closes and closes == sorted(closes)


def test_no_trace_observer_means_no_worker_shipping():
    # without a TraceRecorder the reply batches are None end to end and
    # the run is identical to an untraced one
    plain = _run("philosophers_3")
    rec = TraceRecorder(capacity=None)
    traced = _run("philosophers_3", observers=(rec,))
    assert plain.final_stores() == traced.final_stores()
    assert plain.stats.num_configs == traced.stats.num_configs
    assert len(rec.records()) > 0


def test_wall_clock_flag_propagates_to_workers():
    rec = TraceRecorder(capacity=None, record_wall=False)
    _run("deadlock_pair", observers=(rec,))
    assert all(
        not any(k.startswith("wall_") for k in rc)
        for rc in rec.records()
    )
    rec_wall = TraceRecorder(capacity=None, record_wall=True)
    _run("deadlock_pair", observers=(rec_wall,))
    worker = [rc for rc in rec_wall.records() if rc["shard"] is not None]
    assert worker and all("wall_ts_us" in rc for rc in worker)
