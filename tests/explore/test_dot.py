"""DOT export tests."""

import pytest

from repro.explore import explore
from repro.lang import parse_program


def test_dot_structure():
    prog = parse_program("var g = 0; func main() { s1: g = 1; }")
    graph = explore(prog, "full").graph
    dot = graph.to_dot()
    assert dot.startswith("digraph")
    assert "doublecircle" in dot  # the initial node
    assert "s1" in dot
    assert "palegreen" in dot  # the terminated node


def test_dot_deadlock_colored():
    from repro.programs.paper import deadlock_pair

    graph = explore(deadlock_pair(), "full").graph
    dot = graph.to_dot()
    assert "orange" in dot


def test_dot_fault_colored():
    prog = parse_program("var g = 0; func main() { g = 1 / g; }")
    graph = explore(prog, "full").graph
    assert "tomato" in graph.to_dot()


def test_dot_size_guard():
    from repro.programs.philosophers import philosophers

    graph = explore(philosophers(3), "full").graph
    with pytest.raises(ValueError):
        graph.to_dot(max_nodes=10)


def _graph_with_label(label: str):
    from repro.explore import ConfigGraph
    from repro.semantics.config import initial_config
    from repro.semantics.step import ActionInfo

    prog = parse_program("var g = 0; func main() { g = 1; }")
    graph = ConfigGraph()
    a, _ = graph.add_config(initial_config(prog))
    r = explore(prog, "full")
    b, _ = graph.add_config(r.graph.configs[1])
    action = ActionInfo(
        pid=(0,), label=label, kind="assign",
        reads=(), writes=(), stack=("main",), depth=1,
    )
    graph.add_edge(a, b, (action,))
    return graph


def test_dot_escapes_quotes_in_labels():
    # regression: a '"' inside an action label used to terminate the
    # DOT attribute early, producing an unparseable file
    dot = _graph_with_label('say "hi"').to_dot()
    assert '\\"hi\\"' in dot
    # every line balances its (unescaped) double quotes
    for line in dot.splitlines():
        unescaped = line.replace('\\"', "")
        assert unescaped.count('"') % 2 == 0, line


def test_dot_escapes_backslashes_in_labels():
    dot = _graph_with_label("a\\b").to_dot()
    assert "a\\\\b" in dot
