"""DOT export tests."""

import pytest

from repro.explore import explore
from repro.lang import parse_program


def test_dot_structure():
    prog = parse_program("var g = 0; func main() { s1: g = 1; }")
    graph = explore(prog, "full").graph
    dot = graph.to_dot()
    assert dot.startswith("digraph")
    assert "doublecircle" in dot  # the initial node
    assert "s1" in dot
    assert "palegreen" in dot  # the terminated node


def test_dot_deadlock_colored():
    from repro.programs.paper import deadlock_pair

    graph = explore(deadlock_pair(), "full").graph
    dot = graph.to_dot()
    assert "orange" in dot


def test_dot_fault_colored():
    prog = parse_program("var g = 0; func main() { g = 1 / g; }")
    graph = explore(prog, "full").graph
    assert "tomato" in graph.to_dot()


def test_dot_size_guard():
    from repro.programs.philosophers import philosophers

    graph = explore(philosophers(3), "full").graph
    with pytest.raises(ValueError):
        graph.to_dot(max_nodes=10)
