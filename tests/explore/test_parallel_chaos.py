"""Worker-fault chaos: the parallel backend survives killed and wedged
worker processes.

The ``worker`` failure point hard-exits a shard owner (``os._exit``) at
the top of a task execution — the harshest interruption short of a real
OOM kill: no cleanup, no final dump, in-flight work lost.  The
``worker-hang`` point wedges the worker instead, which must trip the
master's progress watchdog rather than deadlock the run.

Contract under both faults: the master tears the pool down, restarts the
attempt, and the final merged graph is *identical* to the fault-free
parallel run (which the differential suite pins to serial).  Budgets are
armed ``shared=True`` so a firing inside a forked child draws down the
same counter the restarted pool consults — ``times=1`` means exactly one
kill across the whole run.
"""

from __future__ import annotations

import pytest

from repro.explore import ExploreOptions, explore
from repro.programs.corpus import CORPUS
from repro.resilience import chaos
from repro.util.errors import ReproError


@pytest.fixture(autouse=True)
def no_leaked_injector():
    assert chaos.active() is None
    yield
    leaked = chaos.active() is not None
    chaos.uninstall()
    assert not leaked, "test left a chaos injector installed"


def _opts(**kw) -> ExploreOptions:
    kw.setdefault("policy", "stubborn")
    kw.setdefault("backend", "parallel")
    kw.setdefault("jobs", 2)
    return ExploreOptions(**kw)


def test_killed_worker_restarts_and_completes_identically():
    program = CORPUS["philosophers_3"]()
    clean = explore(program, options=_opts())
    with chaos.injected("worker", shared=True) as inj:
        r = explore(program, options=_opts())
    assert inj.armed_fired("worker") == 1  # fired inside a forked child
    assert r.stats.worker_restarts == 1
    assert not r.stats.truncated
    # in-flight work of the killed worker was not lost: the retried run
    # merges to the exact same canonical graph
    assert r.graph.configs == clean.graph.configs
    assert r.graph.edges == clean.graph.edges
    assert r.graph.terminal == clean.graph.terminal
    assert r.final_stores() == clean.final_stores()


def test_mid_run_kill_after_offset_completes_identically():
    program = CORPUS["philosophers_3"]()
    clean = explore(program, options=_opts())
    # let some work complete first so the kill lands mid-exploration,
    # with real state to throw away
    with chaos.injected("worker", after=40, shared=True) as inj:
        r = explore(program, options=_opts())
    assert inj.armed_fired("worker") == 1
    assert r.stats.worker_restarts == 1
    assert r.graph.configs == clean.graph.configs
    assert r.graph.edges == clean.graph.edges


def test_hung_worker_trips_watchdog_not_deadlock():
    program = CORPUS["philosophers_3"]()
    clean = explore(program, options=_opts())
    with chaos.injected("worker-hang", shared=True):
        r = explore(program, options=_opts(parallel_watchdog_s=1.0))
    assert r.stats.worker_restarts == 1
    assert not r.stats.truncated
    assert r.graph.configs == clean.graph.configs
    assert r.graph.edges == clean.graph.edges


def test_unlimited_kills_surface_as_repro_error():
    program = CORPUS["philosophers_3"]()
    with chaos.injected("worker", times=-1, shared=True):
        with pytest.raises(ReproError, match="failed after"):
            explore(program, options=_opts())


def test_killed_worker_in_sleep_mode_restarts():
    program = CORPUS["philosophers_3"]()
    clean = explore(program, options=_opts(sleep=True))
    with chaos.injected("worker", shared=True) as inj:
        r = explore(program, options=_opts(sleep=True))
    assert inj.armed_fired("worker") == 1
    assert r.stats.worker_restarts == 1
    assert r.graph.configs == clean.graph.configs
    assert r.graph.edges == clean.graph.edges


def test_kill_between_checkpoint_and_finish_still_resumable(tmp_path):
    """A worker kill composes with checkpointing: the interrupted-then-
    resumed run under chaos still matches the fault-free reference."""
    from repro.resilience.checkpoint import Checkpointer

    program = CORPUS["philosophers_3"]()
    reference = explore(program, options=_opts())
    path = str(tmp_path / "snap.ckpt")
    with chaos.injected("worker", after=20, shared=True):
        first = explore(
            program,
            options=_opts(),
            checkpointer=Checkpointer(path, every=11, stop_after=1),
        )
        resumed = explore(program, options=_opts(), resume_from=path)
    assert first.stats.truncation_reason == "interrupted"
    assert resumed.stats.resumed
    assert resumed.graph.configs == reference.graph.configs
    assert resumed.graph.edges == reference.graph.edges
    assert resumed.stats.expansions == reference.stats.expansions
