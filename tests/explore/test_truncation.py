"""Truncation paths: ``max_configs`` and ``time_limit_s`` in both the
BFS and the sleep-set (DFS) drivers.

Graceful degradation contract: a truncated exploration sets
``stats.truncated``, keeps graph/stats consistent, and still notifies
observers with ``on_done`` — long sweeps degrade instead of hanging.
"""

from __future__ import annotations

import pytest

from repro.explore import ExploreOptions, Observer, explore
from repro.lang import parse_program

INFINITE_SRC = "var g = 0; func main() { while (true) { g = g + 1; } }"

INFINITE_PAR_SRC = """
var g = 0; var h = 0;
func main() {
    cobegin
    { while (true) { g = g + 1; } }
    { while (true) { h = h + 1; } }
}
"""


class DoneRecorder(Observer):
    def __init__(self):
        self.done = 0
        self.configs = 0

    def on_config(self, graph, cid, config, fresh, status):
        if fresh:
            self.configs += 1

    def on_done(self, graph):
        self.done += 1


@pytest.fixture
def infinite():
    return parse_program(INFINITE_SRC)


@pytest.fixture
def infinite_par():
    return parse_program(INFINITE_PAR_SRC)


# ----------------------------------------------------------------------
# max_configs
# ----------------------------------------------------------------------


def test_bfs_max_configs_truncates_and_notifies(infinite):
    rec = DoneRecorder()
    opts = ExploreOptions(policy="full", max_configs=30)
    r = explore(infinite, options=opts, observers=(rec,))
    assert r.stats.truncated
    assert rec.done == 1
    assert r.stats.num_configs == r.graph.num_configs
    assert 30 <= r.stats.num_configs <= 32


def test_sleep_max_configs_truncates_and_notifies(infinite_par):
    rec = DoneRecorder()
    opts = ExploreOptions(policy="full", sleep=True, max_configs=30)
    r = explore(infinite_par, options=opts, observers=(rec,))
    assert r.stats.truncated
    assert rec.done == 1
    assert r.stats.num_configs == r.graph.num_configs


def test_stubborn_max_configs_truncates(infinite_par):
    opts = ExploreOptions(policy="stubborn", max_configs=25)
    r = explore(infinite_par, options=opts)
    assert r.stats.truncated


# ----------------------------------------------------------------------
# time_limit_s
# ----------------------------------------------------------------------


def test_bfs_time_limit_zero_truncates_immediately(infinite):
    rec = DoneRecorder()
    opts = ExploreOptions(policy="full", time_limit_s=0.0)
    r = explore(infinite, options=opts, observers=(rec,))
    assert r.stats.truncated
    assert rec.done == 1
    assert r.stats.expansions == 0
    assert r.stats.num_configs == 1  # only the initial configuration


def test_sleep_time_limit_zero_truncates_immediately(infinite_par):
    rec = DoneRecorder()
    opts = ExploreOptions(policy="full", sleep=True, time_limit_s=0.0)
    r = explore(infinite_par, options=opts, observers=(rec,))
    assert r.stats.truncated
    assert rec.done == 1
    assert r.stats.expansions == 0
    assert r.stats.num_configs == 1


def test_bfs_time_limit_expires_mid_run(infinite):
    # a tiny but non-zero budget: truncation happens partway, the
    # partial graph stays consistent
    opts = ExploreOptions(policy="full", time_limit_s=0.02, max_configs=10**9)
    r = explore(infinite, options=opts)
    assert r.stats.truncated
    assert r.stats.num_configs == r.graph.num_configs
    assert r.stats.num_edges == r.graph.num_edges


def test_generous_time_limit_does_not_truncate(fig2):
    opts = ExploreOptions(policy="full", time_limit_s=60.0)
    r = explore(fig2, options=opts)
    assert not r.stats.truncated
    base = explore(fig2, "full")
    assert r.stats.num_configs == base.stats.num_configs


def test_generous_time_limit_sleep_does_not_truncate(fig2):
    opts = ExploreOptions(policy="full", sleep=True, time_limit_s=60.0)
    r = explore(fig2, options=opts)
    assert not r.stats.truncated
