"""Sleep-set extension tests."""

import pytest

from repro.explore import explore
from repro.programs.corpus import CORPUS
from repro.programs.philosophers import philosophers


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_sleep_preserves_results(name):
    prog = CORPUS[name]()
    full = explore(prog, "full")
    slept = explore(prog, "full", sleep=True)
    assert slept.final_stores() == full.final_stores()


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_sleep_composes_with_stubborn(name):
    prog = CORPUS[name]()
    full = explore(prog, "full")
    both = explore(prog, "stubborn", sleep=True)
    assert both.final_stores() == full.final_stores()


def test_sleep_reduces_edges(fig5):
    full = explore(fig5, "full")
    slept = explore(fig5, "full", sleep=True)
    assert slept.stats.num_edges < full.stats.num_edges


def test_sleep_plus_stubborn_beats_stubborn_on_philosophers():
    prog = philosophers(4)
    stub = explore(prog, "stubborn")
    both = explore(prog, "stubborn", sleep=True)
    assert both.stats.num_configs < stub.stats.num_configs
    assert both.stats.num_deadlocks == 1


def test_sleep_describe():
    from repro.explore import ExploreOptions

    opts = ExploreOptions(policy="stubborn", coarsen=True, sleep=True)
    assert opts.describe() == "stubborn+coarsen+sleep"


def test_sleep_deadlock_preserved():
    from repro.programs.paper import deadlock_pair

    prog = deadlock_pair()
    slept = explore(prog, "stubborn", sleep=True)
    assert slept.stats.num_deadlocks >= 1
