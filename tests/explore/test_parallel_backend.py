"""Unit tests for the parallel sharded backend: composition rules,
budgets, stats/metrics surface, and the ladder hookup.

Graph/result equivalence against the serial reference is covered by
``test_parallel_differential.py`` (corpus × policy × jobs matrix) and
``tests/properties/test_parallel_random.py`` (seeded random programs).
"""

from __future__ import annotations

import pytest

from repro.explore import ExploreOptions, explore
from repro.metrics import MetricsObserver
from repro.programs.corpus import CORPUS
from repro.resilience import Budgets, Checkpointer, explore_resilient
from repro.util.errors import ReproError


def _opts(**kw) -> ExploreOptions:
    kw.setdefault("backend", "parallel")
    kw.setdefault("jobs", 2)
    return ExploreOptions(**kw)


# --------------------------------------------------------------------------
# composition rules
# --------------------------------------------------------------------------


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        explore(CORPUS["mutex_counter"](), options=ExploreOptions(backend="gpu"))


def test_bad_jobs_rejected():
    with pytest.raises(ValueError, match="jobs"):
        explore(CORPUS["mutex_counter"](), options=_opts(jobs=0))


def test_sleep_sets_compose():
    """Sleep sets no longer force the serial backend: the master runs
    the sleep-DFS order while workers serve sharded expansions."""
    par = explore(CORPUS["mutex_counter"](), options=_opts(sleep=True))
    ser = explore(
        CORPUS["mutex_counter"](), options=ExploreOptions(sleep=True)
    )
    assert par.stats.backend == "parallel"
    assert par.graph.configs == ser.graph.configs
    assert par.graph.edges == ser.graph.edges
    assert par.stats.expansions == ser.stats.expansions


def test_checkpointer_composes(tmp_path):
    """Checkpoints are written at quiescent points (no ReproError)."""
    ck = Checkpointer(str(tmp_path / "snap.ckpt"), every=25)
    r = explore(
        CORPUS["philosophers_3"](),
        options=_opts(policy="stubborn"),
        checkpointer=ck,
    )
    assert not r.stats.truncated
    assert r.stats.checkpoints_written >= 1


def test_resume_missing_snapshot_rejected(tmp_path):
    with pytest.raises(ReproError, match="snapshot"):
        explore(
            CORPUS["mutex_counter"](),
            options=_opts(),
            resume_from=str(tmp_path / "snap.ckpt"),
        )


def test_serial_backend_unchanged_by_new_fields():
    r = explore(CORPUS["mutex_counter"](), options=ExploreOptions())
    assert r.stats.backend == "serial"
    assert r.stats.jobs == 1
    assert r.stats.shard_sizes == ()
    assert r.stats.shard_balance is None
    assert ExploreOptions().describe() == "full"


# --------------------------------------------------------------------------
# stats & metrics surface
# --------------------------------------------------------------------------


def test_parallel_stats_fields():
    r = explore(
        CORPUS["philosophers_3"](), options=_opts(policy="stubborn", jobs=2)
    )
    s = r.stats
    assert s.backend == "parallel"
    assert s.jobs == 2
    assert len(s.shard_sizes) == 2
    assert sum(s.shard_sizes) == s.num_configs
    assert s.shard_balance is not None and s.shard_balance >= 1.0
    assert s.handoffs > 0  # philosophers always crosses shards
    assert s.steals >= 0 and s.worker_restarts == 0
    assert len(s.worker_expansions) == 2
    assert sum(s.worker_expansions) > 0
    assert s.stubborn is not None and s.stubborn.steps > 0
    assert r.options.describe() == "stubborn@j2"


def test_parallel_metrics():
    mo = MetricsObserver()
    r = explore(
        CORPUS["philosophers_3"](),
        options=_opts(policy="full", jobs=2),
        observers=(mo,),
    )
    reg = mo.registry
    assert reg.counter("parallel.handoffs").value == r.stats.handoffs
    assert reg.counter("parallel.steals").value == r.stats.steals
    assert reg.gauge("parallel.shard_balance").value == pytest.approx(
        r.stats.shard_balance
    )
    # the intern hit/miss telemetry stays comparable across backends:
    # misses = unique configs, hits = rediscoveries of visited ones
    assert reg.counter("explore.intern.misses").value == r.stats.num_configs
    assert reg.counter("explore.intern.hits").value > 0
    # observers saw every configuration and every edge at merge time
    assert reg.counter("explore.configs").value == r.stats.num_configs
    assert reg.counter("explore.edges").value == r.stats.num_edges
    assert reg.gauge("graph.configs").value == r.stats.num_configs


# --------------------------------------------------------------------------
# budgets
# --------------------------------------------------------------------------


def test_configs_budget_truncates_gracefully():
    r = explore(
        CORPUS["philosophers_3"](), options=_opts(policy="full", max_configs=50)
    )
    assert r.stats.truncated
    assert r.stats.truncation_reason == "configs"
    # the drain round keeps the merged graph internally consistent:
    # every edge endpoint is a real node
    for e in r.graph.edges:
        assert 0 <= e.src < r.graph.num_configs
        assert 0 <= e.dst < r.graph.num_configs


def test_time_budget_truncates_gracefully():
    r = explore(
        CORPUS["philosophers_3"](),
        options=_opts(policy="full", time_limit_s=0.0),
    )
    assert r.stats.truncated
    assert r.stats.truncation_reason == "time"
    # the initial configuration still lands in the graph
    assert r.stats.num_configs >= 1


# --------------------------------------------------------------------------
# resilience-ladder composition
# --------------------------------------------------------------------------


def test_ladder_composes_with_parallel_backend():
    rr = explore_resilient(
        CORPUS["philosophers_3"](),
        budgets=Budgets(max_configs=200),
        backend="parallel",
        jobs=2,
    )
    assert rr.exact
    assert rr.rung == "stubborn"  # full blew the 200-config budget
    assert rr.result.stats.backend == "parallel"
    assert rr.result.stats.jobs == 2
    assert rr.trail == ("full->stubborn: configs",)
