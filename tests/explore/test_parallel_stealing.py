"""Work-stealing under skew, and shared-memory hygiene.

The hash partition usually spreads configurations evenly, which makes
organic steals rare and hard to assert on.  These tests *force* skew by
monkeypatching :func:`repro.explore.parallel.shard_of` to dump every
configuration on shard 0 — the patched global is inherited by the forked
workers — and then require the idle worker to live off stolen batches.

The second half audits ``/dev/shm``: every transport segment the backend
creates must be unlinked by the master's ``finally`` — after clean runs,
after worker-kill retries, and after runs that die with an error.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.explore import ExploreOptions, explore
from repro.programs.corpus import CORPUS
from repro.programs.philosophers import philosophers
from repro.resilience import chaos
from repro.semantics.transport import shm_available
from repro.util.errors import ReproError


def _opts(**kw) -> ExploreOptions:
    kw.setdefault("policy", "stubborn")
    kw.setdefault("backend", "parallel")
    kw.setdefault("jobs", 2)
    return ExploreOptions(**kw)


# --------------------------------------------------------------------------
# stealing under forced skew
# --------------------------------------------------------------------------


def test_skewed_shards_force_steals_and_rebalance(monkeypatch):
    from repro.explore import parallel as par

    program = philosophers(4)
    clean = explore(program, options=_opts())

    monkeypatch.setattr(par, "shard_of", lambda config, n: 0)
    skewed = explore(program, options=_opts())

    s = skewed.stats
    assert s.steals > 0
    # shard 0 owns every configuration...
    assert s.shard_sizes[0] == s.num_configs and s.shard_sizes[1] == 0
    # ...but worker 1 executed a real share of the work via stealing
    assert s.worker_expansions[1] > 0
    total = sum(s.worker_expansions)
    assert min(s.worker_expansions) >= total // 20

    # skew moves *where* work runs, never what is explored: the merge is
    # canonical by structural digest, so even the node numbering agrees
    assert skewed.graph.configs == clean.graph.configs
    assert skewed.graph.edges == clean.graph.edges
    assert skewed.graph.terminal == clean.graph.terminal
    assert skewed.final_stores() == clean.final_stores()


def test_natural_runs_record_steal_telemetry():
    from repro.metrics import MetricsObserver

    mo = MetricsObserver()
    r = explore(philosophers(4), options=_opts(), observers=(mo,))
    assert mo.registry.counter("parallel.steals").value == r.stats.steals
    if r.stats.steals:
        h = mo.registry.histogram("parallel.steal_batch")
        assert h.count == r.stats.steals


# --------------------------------------------------------------------------
# /dev/shm hygiene
# --------------------------------------------------------------------------

_SHM_DIR = "/dev/shm"

needs_shm = pytest.mark.skipif(
    not (shm_available() and os.path.isdir(_SHM_DIR)),
    reason="POSIX shared memory not available",
)


def _segments() -> set:
    return set(glob.glob(os.path.join(_SHM_DIR, "repro-shm-*")))


@needs_shm
def test_no_segment_leak_after_clean_run():
    before = _segments()
    explore(CORPUS["philosophers_3"](), options=_opts())
    assert _segments() == before


@needs_shm
def test_no_segment_leak_after_worker_kill_retry():
    before = _segments()
    with chaos.injected("worker", shared=True):
        r = explore(CORPUS["philosophers_3"](), options=_opts())
    assert r.stats.worker_restarts == 1
    assert _segments() == before


@needs_shm
def test_no_segment_leak_after_fatal_failure():
    before = _segments()
    with chaos.injected("worker", times=-1, shared=True):
        with pytest.raises(ReproError):
            explore(CORPUS["philosophers_3"](), options=_opts())
    assert _segments() == before


@needs_shm
def test_no_segment_leak_after_sleep_mode_run():
    before = _segments()
    explore(CORPUS["philosophers_3"](), options=_opts(sleep=True))
    assert _segments() == before
