"""Stubborn-set reduction tests (Algorithm 1 and the process-level
variant): soundness on the corpus, reduction where expected."""

import pytest

from repro.explore import explore
from repro.lang import parse_program
from repro.programs.corpus import CORPUS
from repro.programs.philosophers import philosophers, philosophers_ordered
from repro.programs.synthetic import chain_of_updates, local_heavy


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_result_configs_preserved_on_corpus(name):
    prog = CORPUS[name]()
    full = explore(prog, "full")
    red = explore(prog, "stubborn")
    assert red.final_stores() == full.final_stores()
    assert red.stats.num_configs <= full.stats.num_configs


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_process_level_variant_preserves_results(name):
    prog = CORPUS[name]()
    full = explore(prog, "full")
    red = explore(prog, "stubborn-proc")
    assert red.final_stores() == full.final_stores()


def test_reduction_on_locality_example(fig5):
    full = explore(fig5, "full")
    red = explore(fig5, "stubborn")
    assert red.stats.num_configs < full.stats.num_configs / 2


def test_independent_threads_near_linear():
    prog = local_heavy(2, 4)
    full = explore(prog, "full")
    red = explore(prog, "stubborn")
    assert red.stats.num_configs < full.stats.num_configs / 2


def test_chain_workload_fully_sequentialized():
    prog = chain_of_updates(4)
    full = explore(prog, "full")
    red = explore(prog, "stubborn")
    assert red.final_stores() == full.final_stores()
    assert red.stats.num_configs <= full.stats.num_configs


def test_philosophers_deadlock_preserved():
    prog = philosophers(3)
    full = explore(prog, "full")
    red = explore(prog, "stubborn")
    assert full.stats.num_deadlocks == 1
    assert red.stats.num_deadlocks == 1


def test_philosophers_no_false_deadlock():
    prog = philosophers_ordered(3)
    full = explore(prog, "full")
    red = explore(prog, "stubborn")
    assert full.stats.num_deadlocks == 0
    assert red.stats.num_deadlocks == 0


def test_philosophers_reduction_grows_with_n():
    r3 = [explore(philosophers(3), p).stats.num_configs for p in ("full", "stubborn")]
    r4 = [explore(philosophers(4), p).stats.num_configs for p in ("full", "stubborn")]
    assert r3[1] < r3[0] and r4[1] < r4[0]
    assert r4[0] / r4[1] > r3[0] / r3[1]  # reduction factor grows


def test_singleton_when_one_process():
    prog = parse_program("var g = 0; func main() { g = 1; g = 2; }")
    r = explore(prog, "stubborn")
    assert r.stats.stubborn.steps >= 0
    assert r.stats.num_configs == explore(prog, "full").stats.num_configs


def test_join_is_singleton_step():
    # after both children finish, the join should be forced (no branching)
    prog = parse_program(
        "var a = 0; var b = 0; func main() { cobegin { a = 1; } { b = 1; } a = 2; }"
    )
    r = explore(prog, "stubborn")
    assert r.final_stores() == explore(prog, "full").final_stores()


def test_stats_recorded(fig5):
    r = explore(fig5, "stubborn")
    st = r.stats.stubborn
    assert st is not None
    assert 0 < st.mean_reduction <= 1.0
    assert st.steps > 0


def test_faults_preserved_by_reduction():
    prog = parse_program(
        """
        var g = 0; var h = 0;
        func main() { cobegin { g = 1 / h; } { var t = 0; t = 1; } }
        """
    )
    full = explore(prog, "full")
    red = explore(prog, "stubborn")
    assert full.fault_messages() == red.fault_messages()
