"""Hash-collision regression suite (satellite of the parallel backend).

``Config._hash`` is a salted, per-process value used for dict probing —
nothing in the engine may treat hash equality as identity.  These tests
*force* two structurally distinct configurations to collide on
``_hash`` and assert that every dedup surface (ConfigGraph interning,
visited-dict semantics, the structural intern caches, shard routing)
keeps them apart.  A driver that ever keys on ``hash(config)`` alone
would conflate them and fail here.
"""

from __future__ import annotations

import pytest

from repro.explore.graph import ConfigGraph
from repro.semantics import Config, Frame, Process
from repro.semantics.config import (
    clear_intern_caches,
    intern_config,
    shard_of,
    stable_digest,
)


def _mk(globals_):
    root = Process(pid=(0,), frames=(Frame(func="main", pc=0, locals=()),))
    return Config(procs=(root,), globals=tuple(globals_), heap=())


@pytest.fixture
def colliding_pair():
    """Two distinct configurations with identical ``_hash``."""
    a, b = _mk((0,)), _mk((1,))
    object.__setattr__(b, "_hash", a._hash)
    assert hash(a) == hash(b) and a != b
    return a, b


def test_graph_interning_not_fooled(colliding_pair):
    a, b = colliding_pair
    g = ConfigGraph()
    ida, fresh_a = g.add_config(a)
    idb, fresh_b = g.add_config(b)
    assert fresh_a and fresh_b
    assert ida != idb
    assert g.num_configs == 2
    # re-adding either one still dedups correctly
    assert g.add_config(a) == (ida, False)
    assert g.add_config(b) == (idb, False)


def test_visited_dict_semantics(colliding_pair):
    """Both drivers key visited sets by the Config itself; a collision
    lands both in one bucket but equality keeps the entries apart."""
    a, b = colliding_pair
    visited = {a: 0}
    assert b not in visited
    visited[b] = 1
    assert len(visited) == 2 and visited[a] == 0 and visited[b] == 1


def test_intern_caches_not_fooled(colliding_pair):
    a, b = colliding_pair
    clear_intern_caches()
    try:
        ia, ib = intern_config(a), intern_config(b)
        assert ia is not ib and ia != ib
        # identity only for *equal* configs
        assert intern_config(_mk((0,))) is ia
    finally:
        clear_intern_caches()


def test_shard_routing_ignores_salted_hash(colliding_pair):
    """Routing uses the structural stable digest, so a forced ``_hash``
    collision cannot move a configuration to the wrong shard — and even
    a genuine digest collision only co-locates (dedup stays structural)."""
    a, b = colliding_pair
    assert stable_digest(a) == stable_digest(_mk((0,)))
    assert stable_digest(b) == stable_digest(_mk((1,)))
    for nshards in (1, 2, 4):
        assert shard_of(a, nshards) == shard_of(_mk((0,)), nshards)
        assert shard_of(b, nshards) == shard_of(_mk((1,)), nshards)
