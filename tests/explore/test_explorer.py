"""Exploration driver tests (full policy, graph construction, stats)."""

import pytest

from repro.explore import (
    DEADLOCK,
    FAULT,
    TERMINATED,
    ExploreOptions,
    TraceObserver,
    explore,
)
from repro.lang import parse_program
from repro.programs.paper import deadlock_pair, fig2_shasha_snir


def test_fig2_outcomes_exactly_three(fig2):
    r = explore(fig2, "full")
    assert sorted(r.global_values("x", "y")) == [(0, 1), (1, 0), (1, 1)]


def test_fig2_terminal_counts(fig2):
    r = explore(fig2, "full")
    assert r.stats.num_deadlocks == 0
    assert r.stats.num_faults == 0
    assert r.stats.num_terminated >= 3


def test_single_thread_linear_graph():
    prog = parse_program("var g = 0; func main() { g = 1; g = 2; g = 3; }")
    r = explore(prog, "full")
    # linear: assign, assign, assign, return → 5 configs in a chain
    assert r.stats.num_configs == 5
    assert r.stats.num_edges == 4


def test_diamond_merges_states():
    # two independent writes to different globals: the diamond closes
    prog = parse_program(
        "var a = 0; var b = 0; func main() { cobegin { a = 1; } { b = 1; } }"
    )
    r = explore(prog, "full")
    terminal = r.graph.terminals(TERMINATED)
    assert len(terminal) == 1  # single merged final configuration


def test_deadlock_classified():
    r = explore(deadlock_pair(), "full")
    assert r.stats.num_deadlocks == 1
    dl = r.deadlock_configs()[0]
    assert dl.fault is None


def test_fault_classified():
    prog = parse_program("var g = 0; func main() { g = 1 / g; }")
    r = explore(prog, "full")
    assert r.graph.terminals(FAULT)
    assert any("div-by-zero" in m for m in r.fault_messages())


def test_max_configs_truncation():
    prog = parse_program(
        "var g = 0; func main() { while (true) { g = g + 1; } }"
    )
    opts = ExploreOptions(policy="full", max_configs=50)
    r = explore(prog, options=opts)
    assert r.stats.truncated


def test_infinite_state_space_without_bound_grows():
    # monotone counter: every state distinct; truncation must kick in
    prog = parse_program("var g = 0; func main() { while (true) { g = g + 1; } }")
    r = explore(prog, options=ExploreOptions(policy="full", max_configs=30))
    assert r.stats.num_configs >= 30


def test_cyclic_state_space_terminates():
    # flag flips forever: only finitely many states — exploration closes
    prog = parse_program(
        "var g = 0; func main() { while (true) { g = 1 - g; } }"
    )
    r = explore(prog, "full")
    assert not r.stats.truncated
    assert r.stats.num_terminated == 0  # diverges, no terminal states


def test_observer_sees_every_edge(fig2):
    obs = TraceObserver()
    r = explore(fig2, "full", observers=(obs,))
    assert len(obs.edges) == r.stats.num_edges


def test_unknown_policy_rejected(fig2):
    with pytest.raises(ValueError):
        explore(fig2, "bogus")


def test_determinism_same_graph(fig2):
    a = explore(fig2, "full")
    b = explore(fig2, "full")
    assert a.stats.num_configs == b.stats.num_configs
    assert [e.labels for e in a.graph.edges] == [e.labels for e in b.graph.edges]


def test_edges_carry_actions(fig2):
    r = explore(fig2, "full")
    e = r.graph.edges[0]
    assert e.actions and e.actions[0].label


def test_final_stores_includes_heap():
    prog = parse_program(
        "var p = 0; func main() { m1: p = malloc(1); *p = 9; }"
    )
    r = explore(prog, options=ExploreOptions(policy="full"))
    stores = r.final_stores()
    ((globals_, heap, fault),) = stores
    assert heap[0][1] == (9,)


def test_result_summary(fig2):
    r = explore(fig2, "full")
    summary = r.graph.result_summary()
    assert summary[TERMINATED] == r.stats.num_terminated
    assert summary[DEADLOCK] == 0
