"""Cross-backend differential suite: the parallel work-stealing driver
must be *indistinguishable* from the serial reference in everything the
paper's theory cares about.

Contract, per corpus program × expansion policy (± sleep sets) × jobs
∈ {1, 2, 4}:

- identical configuration count and edge count (the policies are
  deterministic per-configuration functions, so the explored graphs are
  the same graph up to node numbering);
- identical result-configuration payloads (final stores), deadlock
  counts, and fault messages — the paper's reduction invariant;
- identical *content* edge multiset ``(src config, dst config, labels)``
  — a structural graph-isomorphism check that catches dropped or
  duplicated transitions even when the counts accidentally agree;
- identical merged metrics on every backend-comparable series: the
  master merges worker registries (``MetricsRegistry.merge``), so
  deterministic counters and histograms (``explore.expansions``,
  ``stubborn.*``, ``coarsen.*`` …) must equal the serial registry.
  Excluded by design: the worker-local series named by the shared
  constants ``WORKER_LOCAL_PREFIXES`` / ``WORKER_LOCAL_SERIES`` in
  :mod:`repro.metrics.registry` (rationale per series lives on the
  constants — one source of truth for this suite and the
  ``MetricsRegistry.merge`` contract), plus gauges and timers
  (wall-clock / peak semantics).

Determinism (the no-dict-iteration-order-leak guarantee): the merged
graph of two repeated runs at the same ``jobs`` is identical node by
node and edge by edge, and counts/result sets are identical across
``jobs`` values.

The full corpus runs at jobs=2 (every program, every policy); the
wider jobs sweep {1, 4} runs on the bench smoke subset to keep tier-1
wall-clock bounded.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.bench import SMOKE_PROGRAMS
from repro.explore import ExploreOptions, explore
from repro.metrics import MetricsObserver
from repro.metrics.registry import (
    WORKER_LOCAL_PREFIXES,
    WORKER_LOCAL_SERIES,
)
from repro.programs.corpus import CORPUS

#: (policy, coarsen, sleep) — sleep sets compose with the parallel
#: backend since the work-stealing rewrite (master-sequenced DFS with
#: sharded expansion servers).
PARALLEL_COMBOS = (
    ("full", False, False),
    ("stubborn", False, False),
    ("stubborn-proc", False, False),
    ("stubborn", True, False),
    ("full", False, True),
    ("stubborn", False, True),
    ("stubborn-proc", False, True),
)
COMBO_IDS = [
    ExploreOptions(policy=p, coarsen=c, sleep=s).describe()
    for p, c, s in PARALLEL_COMBOS
]

_PROGRAMS: dict = {}
_SERIAL: dict = {}


def _program(name):
    prog = _PROGRAMS.get(name)
    if prog is None:
        prog = _PROGRAMS[name] = CORPUS[name]()
    return prog


def _serial(name, policy, coarsen, sleep=False):
    """Serial reference result + its comparable-metrics snapshot."""
    key = (name, policy, coarsen, sleep)
    cached = _SERIAL.get(key)
    if cached is None:
        mo = MetricsObserver()
        r = explore(
            _program(name),
            options=ExploreOptions(policy=policy, coarsen=coarsen, sleep=sleep),
            observers=(mo,),
        )
        cached = _SERIAL[key] = (r, _comparable(mo.snapshot()))
    return cached


def _comparable(snapshot: dict) -> dict:
    """The backend-comparable slice of a registry snapshot:
    deterministic counters and histograms minus the worker-local series
    (the shared exclusion constants in :mod:`repro.metrics.registry`)."""
    return {
        name: {k: v for k, v in data.items() if k != "type"}
        for name, data in snapshot.items()
        if data["type"] in ("counter", "histogram")
        and not name.startswith(WORKER_LOCAL_PREFIXES)
        and name not in WORKER_LOCAL_SERIES
    }


def _edge_content(result) -> Counter:
    """The graph's edge multiset keyed by configuration *content*, not
    node id — invariant across node numberings."""
    g = result.graph
    return Counter(
        (g.configs[e.src], g.configs[e.dst], e.labels) for e in g.edges
    )


def _assert_equivalent(par, ser) -> None:
    assert not par.stats.truncated and not ser.stats.truncated
    assert par.stats.num_configs == ser.stats.num_configs
    assert par.stats.num_edges == ser.stats.num_edges
    assert par.final_stores() == ser.final_stores()
    assert par.stats.num_terminated == ser.stats.num_terminated
    assert par.stats.num_deadlocks == ser.stats.num_deadlocks
    assert par.stats.num_faults == ser.stats.num_faults
    assert frozenset(par.fault_messages()) == frozenset(ser.fault_messages())
    assert set(par.graph.configs) == set(ser.graph.configs)
    assert _edge_content(par) == _edge_content(ser)


@pytest.mark.parametrize("combo", PARALLEL_COMBOS, ids=COMBO_IDS)
@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_matches_serial_at_two_jobs(name, combo):
    policy, coarsen, sleep = combo
    mo = MetricsObserver()
    par = explore(
        _program(name),
        options=ExploreOptions(
            policy=policy, coarsen=coarsen, sleep=sleep,
            backend="parallel", jobs=2,
        ),
        observers=(mo,),
    )
    ser, ser_metrics = _serial(name, policy, coarsen, sleep)
    _assert_equivalent(par, ser)
    assert _comparable(mo.snapshot()) == ser_metrics


@pytest.mark.parametrize("jobs", [1, 4])
@pytest.mark.parametrize("combo", PARALLEL_COMBOS, ids=COMBO_IDS)
@pytest.mark.parametrize("name", sorted(SMOKE_PROGRAMS))
def test_smoke_subset_across_jobs(name, combo, jobs):
    policy, coarsen, sleep = combo
    mo = MetricsObserver()
    par = explore(
        _program(name),
        options=ExploreOptions(
            policy=policy, coarsen=coarsen, sleep=sleep,
            backend="parallel", jobs=jobs,
        ),
        observers=(mo,),
    )
    ser, ser_metrics = _serial(name, policy, coarsen, sleep)
    _assert_equivalent(par, ser)
    assert _comparable(mo.snapshot()) == ser_metrics


# --------------------------------------------------------------------------
# determinism
# --------------------------------------------------------------------------


def _run(name, jobs):
    return explore(
        _program(name),
        options=ExploreOptions(
            policy="stubborn", backend="parallel", jobs=jobs
        ),
    )


@pytest.mark.parametrize("name", ["philosophers_3", "deadlock_pair"])
def test_repeated_runs_identical(name):
    """Two runs at the same jobs produce the same merged graph,
    node by node, edge by edge, terminal by terminal — byte-identical
    modulo wall-clock.  (Scheduling-dependent stats — ``handoffs``,
    ``steals``, per-worker task counts — are deliberately *not* part of
    this contract; the canonical quantities are.)"""
    a, b = _run(name, 2), _run(name, 2)
    assert a.graph.configs == b.graph.configs
    assert a.graph.edges == b.graph.edges
    assert list(a.graph.terminal.items()) == list(b.graph.terminal.items())
    assert a.graph.initial == b.graph.initial
    assert a.stats.shard_sizes == b.stats.shard_sizes


@pytest.mark.parametrize("name", ["philosophers_3", "mutex_counter"])
def test_counts_and_results_identical_across_jobs(name):
    runs = {jobs: _run(name, jobs) for jobs in (1, 2, 4)}
    counts = {
        (r.stats.num_configs, r.stats.num_edges) for r in runs.values()
    }
    assert len(counts) == 1
    stores = {frozenset(r.final_stores()) for r in runs.values()}
    assert len(stores) == 1
    contents = [_edge_content(r) for r in runs.values()]
    assert contents[0] == contents[1] == contents[2]


def test_merged_graph_identical_across_jobs():
    """The canonical merge orders configurations by structural digest,
    not by discovery: the merged graph is the *same object* — same node
    numbering, same edge list — whatever the worker count."""
    runs = [_run("philosophers_3", jobs) for jobs in (1, 2, 4)]
    for other in runs[1:]:
        assert runs[0].graph.configs == other.graph.configs
        assert runs[0].graph.edges == other.graph.edges
        assert runs[0].graph.terminal == other.graph.terminal


# --------------------------------------------------------------------------
# checkpoint/resume (mirrors tests/resilience/test_resume_equivalence.py)
# --------------------------------------------------------------------------


def _signature(result):
    g = result.graph
    s = result.stats
    return {
        "stores": result.final_stores(),
        "configs": list(g.configs),
        "edges": list(g.edges),
        "terminal": dict(g.terminal),
        "initial": g.initial,
        "num_terminated": s.num_terminated,
        "num_deadlocks": s.num_deadlocks,
        "num_faults": s.num_faults,
        "expansions": s.expansions,
        "actions": s.actions_executed,
    }


@pytest.mark.parametrize(
    "opts_kw",
    [
        {"policy": "stubborn"},
        {"policy": "full", "coarsen": True},
        {"policy": "stubborn", "sleep": True},
    ],
    ids=["stubborn", "full+coarsen", "stubborn+sleep"],
)
def test_parallel_checkpoint_resume_matches_uninterrupted(opts_kw, tmp_path):
    """Interrupt a parallel run at its first quiescent checkpoint and
    resume it (still parallel): graph and cumulative stats equal the
    uninterrupted parallel run's — which in turn equals serial."""
    from repro.resilience.checkpoint import Checkpointer

    program = _program("philosophers_3")
    opts = ExploreOptions(backend="parallel", jobs=2, **opts_kw)
    reference = explore(program, options=opts)
    path = str(tmp_path / "snap.ckpt")
    first = explore(
        program,
        options=opts,
        checkpointer=Checkpointer(path, every=11, stop_after=1),
    )
    assert first.stats.truncation_reason == "interrupted"
    assert first.stats.checkpoints_written == 1
    resumed = explore(program, options=opts, resume_from=path)
    assert resumed.stats.resumed
    assert _signature(resumed) == _signature(reference)


def test_parallel_snapshot_resumes_serially_and_back(tmp_path):
    """Snapshots are cross-backend in both directions: a parallel
    snapshot feeds a serial resume and a serial snapshot feeds a
    parallel resume, converging on the same explored content."""
    from repro.resilience.checkpoint import Checkpointer

    program = _program("philosophers_3")
    par = ExploreOptions(policy="stubborn", backend="parallel", jobs=2)
    ser = ExploreOptions(policy="stubborn")
    reference = explore(program, options=ser)

    def content(result):
        return (
            frozenset(result.graph.configs),
            _edge_content(result),
            {
                result.graph.configs[c]: st
                for c, st in result.graph.terminal.items()
            },
            result.final_stores(),
        )

    p2s = str(tmp_path / "p2s.ckpt")
    first = explore(
        program,
        options=par,
        checkpointer=Checkpointer(p2s, every=11, stop_after=1),
    )
    assert first.stats.truncation_reason == "interrupted"
    serial_resumed = explore(program, options=ser, resume_from=p2s)
    assert serial_resumed.stats.resumed
    assert content(serial_resumed) == content(reference)

    s2p = str(tmp_path / "s2p.ckpt")
    explore(
        program,
        options=ser,
        checkpointer=Checkpointer(s2p, every=11, stop_after=1),
    )
    parallel_resumed = explore(program, options=par, resume_from=s2p)
    assert parallel_resumed.stats.resumed
    assert content(parallel_resumed) == content(reference)
    assert parallel_resumed.stats.expansions == reference.stats.expansions


# --------------------------------------------------------------------------
# interconnect probes: suppression cache and fragment streaming
# --------------------------------------------------------------------------


def test_suppression_fires_on_reconverging_frontier():
    """The sender-side seen-digest cache earns its keep: on a program
    whose interleavings reconverge heavily, repeat candidates are
    suppressed at the source instead of shipped and rejected by the
    owner's visited set."""
    r = explore(
        _program("philosophers_3"),
        options=ExploreOptions(policy="full", backend="parallel", jobs=2),
    )
    assert r.stats.cand_suppressed > 0
    assert r.stats.msg_bytes > 0


def test_seen_cache_poisoning_never_drops_a_config():
    """Forced digest collisions in the suppression cache: with every
    candidate hashing to the same key, the cache sees nothing but
    collisions — it must verify configuration equality, poison the key,
    and keep shipping, never suppressing a genuinely-new config."""
    from repro.explore import parallel as par

    orig = par._seen_key
    par._seen_key = lambda config: 1  # fork inherits the patch
    try:
        r = explore(
            _program("philosophers_3"),
            options=ExploreOptions(
                policy="full", backend="parallel", jobs=2
            ),
        )
    finally:
        par._seen_key = orig
    ser, _ = _serial("philosophers_3", "full", False)
    _assert_equivalent(r, ser)


def test_worker_killed_mid_fragment_stream_merges_clean():
    """Chaos drill: with the fragment threshold forced to 1 the workers
    stream graph deltas constantly, so a kill lands with fragments of
    the dead worker already folded into the master's accumulator.  The
    restarted attempt must discard them wholesale — the merged graph
    equals the fault-free run's."""
    from repro.explore import parallel as par

    from repro.resilience import chaos

    opts = ExploreOptions(
        policy="stubborn", backend="parallel", jobs=2
    )
    program = _program("philosophers_3")
    clean = explore(program, options=opts)
    orig = par._FRAG_MIN
    par._FRAG_MIN = 1
    try:
        assert chaos.active() is None
        with chaos.injected("worker", after=40, shared=True) as inj:
            r = explore(program, options=opts)
        assert inj.armed_fired("worker") == 1
    finally:
        par._FRAG_MIN = orig
        chaos.uninstall()
    assert r.stats.worker_restarts == 1
    assert r.graph.configs == clean.graph.configs
    assert r.graph.edges == clean.graph.edges
    assert r.graph.terminal == clean.graph.terminal
    assert r.final_stores() == clean.final_stores()
