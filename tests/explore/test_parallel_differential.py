"""Cross-backend differential suite: the parallel sharded driver must be
*indistinguishable* from the serial BFS reference in everything the
paper's theory cares about.

Contract, per corpus program × expansion policy × jobs ∈ {1, 2, 4}:

- identical configuration count and edge count (the policies are
  deterministic per-configuration functions, so the explored graphs are
  the same graph up to node numbering);
- identical result-configuration payloads (final stores), deadlock
  counts, and fault messages — the paper's reduction invariant;
- identical *content* edge multiset ``(src config, dst config, labels)``
  — a structural graph-isomorphism check that catches dropped or
  duplicated transitions even when the counts accidentally agree;
- identical merged metrics on every backend-comparable series: the
  master merges worker registries (``MetricsRegistry.merge``), so
  deterministic counters and histograms (``explore.expansions``,
  ``stubborn.*``, ``coarsen.*`` …) must equal the serial registry.
  Excluded by design: ``explore.frontier_depth`` (a BFS queue and a
  sharded frontier have different shapes), ``explore.intern.hits``
  (workers dedup successor batches before interning, so parallel hit
  counts are legitimately lower), ``expand.*`` and ``digest.*``
  (memo-cache hit/miss splits and digest reuse depend on *where* the
  work ran — per-shard caches see different locality than the serial
  cache, and only the parallel backend digests at all — while the
  expansion *outcomes* they produce are asserted equal through the
  graph/metric checks above), ``parallel.*`` (no serial counterpart),
  gauges and timers (wall-clock / peak semantics).

Determinism (the no-dict-iteration-order-leak guarantee): the merged
graph of two repeated runs at the same ``jobs`` is identical node by
node and edge by edge, and counts/result sets are identical across
``jobs`` values.

The full corpus runs at jobs=2 (every program, every policy); the
wider jobs sweep {1, 4} runs on the bench smoke subset to keep tier-1
wall-clock bounded.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.bench import SMOKE_PROGRAMS
from repro.explore import ExploreOptions, explore
from repro.metrics import MetricsObserver
from repro.programs.corpus import CORPUS

#: Deterministic series that are *not* backend-comparable (see module
#: docstring for why each is excluded).
_EXCLUDED_SERIES = frozenset(
    {"explore.frontier_depth", "explore.intern.hits"}
)

#: (policy, coarsen) — sleep is serial-only by design.
PARALLEL_COMBOS = (
    ("full", False),
    ("stubborn", False),
    ("stubborn-proc", False),
    ("stubborn", True),
)
COMBO_IDS = [
    ExploreOptions(policy=p, coarsen=c).describe() for p, c in PARALLEL_COMBOS
]

_PROGRAMS: dict = {}
_SERIAL: dict = {}


def _program(name):
    prog = _PROGRAMS.get(name)
    if prog is None:
        prog = _PROGRAMS[name] = CORPUS[name]()
    return prog


def _serial(name, policy, coarsen):
    """Serial reference result + its comparable-metrics snapshot."""
    key = (name, policy, coarsen)
    cached = _SERIAL.get(key)
    if cached is None:
        mo = MetricsObserver()
        r = explore(
            _program(name),
            options=ExploreOptions(policy=policy, coarsen=coarsen),
            observers=(mo,),
        )
        cached = _SERIAL[key] = (r, _comparable(mo.snapshot()))
    return cached


def _comparable(snapshot: dict) -> dict:
    """The backend-comparable slice of a registry snapshot:
    deterministic counters and histograms minus the excluded series."""
    return {
        name: {k: v for k, v in data.items() if k != "type"}
        for name, data in snapshot.items()
        if data["type"] in ("counter", "histogram")
        and not name.startswith(("parallel.", "expand.", "digest."))
        and name not in _EXCLUDED_SERIES
    }


def _edge_content(result) -> Counter:
    """The graph's edge multiset keyed by configuration *content*, not
    node id — invariant across node numberings."""
    g = result.graph
    return Counter(
        (g.configs[e.src], g.configs[e.dst], e.labels) for e in g.edges
    )


def _assert_equivalent(par, ser) -> None:
    assert not par.stats.truncated and not ser.stats.truncated
    assert par.stats.num_configs == ser.stats.num_configs
    assert par.stats.num_edges == ser.stats.num_edges
    assert par.final_stores() == ser.final_stores()
    assert par.stats.num_terminated == ser.stats.num_terminated
    assert par.stats.num_deadlocks == ser.stats.num_deadlocks
    assert par.stats.num_faults == ser.stats.num_faults
    assert frozenset(par.fault_messages()) == frozenset(ser.fault_messages())
    assert set(par.graph.configs) == set(ser.graph.configs)
    assert _edge_content(par) == _edge_content(ser)


@pytest.mark.parametrize("combo", PARALLEL_COMBOS, ids=COMBO_IDS)
@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_matches_serial_at_two_jobs(name, combo):
    policy, coarsen = combo
    mo = MetricsObserver()
    par = explore(
        _program(name),
        options=ExploreOptions(
            policy=policy, coarsen=coarsen, backend="parallel", jobs=2
        ),
        observers=(mo,),
    )
    ser, ser_metrics = _serial(name, policy, coarsen)
    _assert_equivalent(par, ser)
    assert _comparable(mo.snapshot()) == ser_metrics


@pytest.mark.parametrize("jobs", [1, 4])
@pytest.mark.parametrize("combo", PARALLEL_COMBOS, ids=COMBO_IDS)
@pytest.mark.parametrize("name", sorted(SMOKE_PROGRAMS))
def test_smoke_subset_across_jobs(name, combo, jobs):
    policy, coarsen = combo
    mo = MetricsObserver()
    par = explore(
        _program(name),
        options=ExploreOptions(
            policy=policy, coarsen=coarsen, backend="parallel", jobs=jobs
        ),
        observers=(mo,),
    )
    ser, ser_metrics = _serial(name, policy, coarsen)
    _assert_equivalent(par, ser)
    assert _comparable(mo.snapshot()) == ser_metrics


# --------------------------------------------------------------------------
# determinism
# --------------------------------------------------------------------------


def _run(name, jobs):
    return explore(
        _program(name),
        options=ExploreOptions(
            policy="stubborn", backend="parallel", jobs=jobs
        ),
    )


@pytest.mark.parametrize("name", ["philosophers_3", "deadlock_pair"])
def test_repeated_runs_identical(name):
    """Two runs at the same jobs produce the same merged graph,
    node by node, edge by edge, terminal by terminal — byte-identical
    modulo wall-clock."""
    a, b = _run(name, 2), _run(name, 2)
    assert a.graph.configs == b.graph.configs
    assert a.graph.edges == b.graph.edges
    assert list(a.graph.terminal.items()) == list(b.graph.terminal.items())
    assert a.graph.initial == b.graph.initial
    assert a.stats.shard_sizes == b.stats.shard_sizes
    assert a.stats.handoffs == b.stats.handoffs
    assert a.stats.rounds == b.stats.rounds


@pytest.mark.parametrize("name", ["philosophers_3", "mutex_counter"])
def test_counts_and_results_identical_across_jobs(name):
    runs = {jobs: _run(name, jobs) for jobs in (1, 2, 4)}
    counts = {
        (r.stats.num_configs, r.stats.num_edges) for r in runs.values()
    }
    assert len(counts) == 1
    stores = {frozenset(r.final_stores()) for r in runs.values()}
    assert len(stores) == 1
    contents = [_edge_content(r) for r in runs.values()]
    assert contents[0] == contents[1] == contents[2]
