"""ConfigGraph data-structure tests."""

from repro.explore import explore
from repro.explore.graph import TERMINATED, ConfigGraph
from repro.lang import parse_program
from repro.semantics import initial_config


def test_intern_dedupes():
    prog = parse_program("func main() { }")
    g = ConfigGraph()
    c = initial_config(prog)
    cid1, fresh1 = g.add_config(c)
    cid2, fresh2 = g.add_config(c)
    assert cid1 == cid2
    assert fresh1 and not fresh2


def test_edges_indexed_both_ways():
    prog = parse_program("var g = 0; func main() { g = 1; }")
    r = explore(prog, "full")
    graph = r.graph
    for eid, edge in enumerate(graph.edges):
        assert eid in graph.out_edges[edge.src]
        assert eid in graph.in_edges[edge.dst]


def test_successors_helper():
    prog = parse_program("var g = 0; func main() { g = 1; }")
    graph = explore(prog, "full").graph
    succs = graph.successors(graph.initial)
    assert len(succs) == 1


def test_edge_aggregates():
    prog = parse_program("var a = 1; var b = 0; func main() { s1: b = a; }")
    graph = explore(prog, "full").graph
    edge = graph.edges[0]
    assert edge.labels == ("s1",)
    assert ("g", 0) in edge.reads
    assert ("g", 1) in edge.writes
    assert edge.pid == (0,)


def test_terminals_filtered():
    prog = parse_program("var g = 0; func main() { g = 1; }")
    graph = explore(prog, "full").graph
    assert graph.terminals(TERMINATED) == graph.terminals()


def test_result_stores_set():
    prog = parse_program("var g = 0; func main() { g = 1; }")
    graph = explore(prog, "full").graph
    assert len(graph.result_stores()) == 1
