"""Virtual-coarsening tests (Observation 5)."""

import pytest

from repro.analyses.accesses import access_analysis
from repro.explore import explore
from repro.explore.coarsen import action_is_critical, build_block
from repro.lang import parse_program
from repro.programs.corpus import CORPUS
from repro.semantics import StepOptions, initial_config


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_results_preserved_under_coarsening(name):
    prog = CORPUS[name]()
    full = explore(prog, "full")
    co = explore(prog, "full", coarsen=True)
    assert co.final_stores() == full.final_stores()


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_coarsen_composes_with_stubborn(name):
    prog = CORPUS[name]()
    full = explore(prog, "full")
    both = explore(prog, "stubborn", coarsen=True)
    assert both.final_stores() == full.final_stores()


def test_blocks_obey_critical_budget(fig5):
    # a single statement may itself contain two critical references
    # (e.g. ``s = s + t``) — it stays atomic but is never *fused*;
    # any multi-action block carries at most one critical reference.
    access = access_analysis(fig5)
    r = explore(fig5, "full", coarsen=True)
    for edge in r.graph.iter_edges():
        if len(edge.actions) > 1:
            crit = sum(action_is_critical(access, a) for a in edge.actions)
            assert crit <= 1


def test_local_runs_fused(fig5):
    full = explore(fig5, "full")
    co = explore(fig5, "full", coarsen=True)
    assert co.stats.num_configs < full.stats.num_configs
    # some edge fused more than one action
    assert any(len(e.actions) > 1 for e in co.graph.iter_edges())


def test_sequential_program_collapses_to_one_block():
    prog = parse_program("var g = 0; func main() { var t = 0; t = 1; t = 2; g = t; }")
    r = explore(prog, "full", coarsen=True)
    # no concurrency: 'g' is not critical, so everything fuses
    assert r.stats.num_configs == 2


def test_block_stops_at_blocking_instruction():
    prog = parse_program(
        """
        var f = 0; var r = 0;
        func main() { cobegin { var t = 0; t = 1; assume(f == 1); r = t; } { f = 1; } }
        """
    )
    access = access_analysis(prog)
    config = initial_config(prog)
    # spawn first
    from repro.semantics import next_infos

    spawn = next_infos(prog, config, StepOptions())[0].succ
    block = build_block(prog, spawn, (0, 0), access, StepOptions())
    # the block must not run past the (currently false) assume
    labels = [a.label for a in block.actions]
    assert all("r" not in l or not l.startswith("r") for l in labels)
    top = block.succ.proc((0, 0)).top
    assert "IAssume" in type(prog.funcs[top.func].instrs[top.pc]).__name__


def test_block_cycle_guard_terminates():
    # a purely local infinite loop must not hang the block builder
    prog = parse_program(
        "var g = 0; func main() { cobegin { var t = 0; while (true) { t = 1 - t; } } { g = 1; } }"
    )
    r = explore(prog, "full", coarsen=True)
    assert r.stats.num_configs > 0


def test_block_length_cap():
    from repro.explore import ExploreOptions

    prog = parse_program(
        "var g = 0; func main() { var t = 0; "
        + " ".join(f"t = t + {i};" for i in range(20))
        + " g = t; }"
    )
    opts = ExploreOptions(policy="full", coarsen=True, max_block_len=5)
    r = explore(prog, options=opts)
    for e in r.graph.iter_edges():
        assert len(e.actions) <= 5


def test_coarsening_through_calls():
    prog = parse_program(
        """
        var g = 0;
        func f() { var t = 1; return t + 1; }
        func main() { cobegin { var x = 0; x = f(); g = x; } { var y = 0; y = f(); g = g + y; } }
        """
    )
    full = explore(prog, "full")
    co = explore(prog, "full", coarsen=True)
    assert co.final_stores() == full.final_stores()
    assert co.stats.num_configs < full.stats.num_configs


def test_fault_inside_block_is_terminal():
    prog = parse_program(
        "var g = 0; func main() { var t = 0; t = 1; t = t / 0; g = 1; }"
    )
    r = explore(prog, "full", coarsen=True)
    assert r.stats.num_faults == 1
