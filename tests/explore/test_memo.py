"""Cache-on vs cache-off differential suite for the footprint memo
(:mod:`repro.explore.memo`).

The memoized expansion path must be *invisible* in everything but
wall-clock: per corpus program × {full, stubborn, stubborn-proc} ×
{±coarsen}, the serial driver with ``memo=True`` must produce the
**identical** :class:`~repro.explore.graph.ConfigGraph` — same configs
in the same discovery order, same edges with the same labels, same
terminals — and the identical bench ``result_digest`` as ``memo=False``.
The parallel backend gets the same treatment at ``jobs=2`` on the bench
smoke subset (both runs parallel, so the deterministic shard merge makes
graph equality exact there too; the full corpus already runs memo-on
jobs=2 against the serial reference in
``test_parallel_differential.py``).

Plus the targeted soundness probes: a process whose read footprint was
overwritten must be recomputed (an *invalidation*), a process with a
disjoint footprint must replay from cache, and the replayed expansion
must equal the freshly computed one field by field.
"""

from __future__ import annotations

import pytest

from repro.analyses.accesses import access_analysis
from repro.bench import SMOKE_PROGRAMS, result_digest
from repro.explore import ExpandCache, ExploreOptions, expand_memoized, explore
from repro.explore.explorer import _expand
from repro.lang import parse_program
from repro.programs.corpus import CORPUS
from repro.semantics.config import initial_config

MEMO_COMBOS = (
    ("full", False),
    ("full", True),
    ("stubborn", False),
    ("stubborn", True),
    ("stubborn-proc", False),
    ("stubborn-proc", True),
)
COMBO_IDS = [
    ExploreOptions(policy=p, coarsen=c).describe() for p, c in MEMO_COMBOS
]

_PROGRAMS: dict = {}


def _program(name):
    prog = _PROGRAMS.get(name)
    if prog is None:
        prog = _PROGRAMS[name] = CORPUS[name]()
    return prog


def _assert_identical_graphs(on, off) -> None:
    """Exact ConfigGraph equality — not just isomorphism: the memo path
    must preserve discovery order, so node ids line up too."""
    g_on, g_off = on.graph, off.graph
    assert g_on.configs == g_off.configs
    assert [
        (e.src, e.dst, e.labels) for e in g_on.edges
    ] == [(e.src, e.dst, e.labels) for e in g_off.edges]
    assert list(g_on.terminal.items()) == list(g_off.terminal.items())
    assert g_on.initial == g_off.initial
    assert on.stats.expansions == off.stats.expansions
    assert on.stats.actions_executed == off.stats.actions_executed
    assert result_digest(on) == result_digest(off)


@pytest.mark.parametrize("combo", MEMO_COMBOS, ids=COMBO_IDS)
@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_memo_on_off_identical_serial(name, combo):
    policy, coarsen = combo
    prog = _program(name)
    on = explore(
        prog,
        options=ExploreOptions(policy=policy, coarsen=coarsen, memo=True),
    )
    off = explore(
        prog,
        options=ExploreOptions(policy=policy, coarsen=coarsen, memo=False),
    )
    _assert_identical_graphs(on, off)


@pytest.mark.parametrize("combo", MEMO_COMBOS, ids=COMBO_IDS)
@pytest.mark.parametrize("name", sorted(SMOKE_PROGRAMS))
def test_smoke_memo_on_off_identical_parallel(name, combo):
    policy, coarsen = combo
    prog = _program(name)
    runs = [
        explore(
            prog,
            options=ExploreOptions(
                policy=policy,
                coarsen=coarsen,
                backend="parallel",
                jobs=2,
                memo=memo,
            ),
        )
        for memo in (True, False)
    ]
    _assert_identical_graphs(*runs)


def test_sleep_memo_on_off_identical():
    prog = _program("philosophers_3")
    on = explore(
        prog,
        options=ExploreOptions(policy="stubborn", sleep=True, memo=True),
    )
    off = explore(
        prog,
        options=ExploreOptions(policy="stubborn", sleep=True, memo=False),
    )
    _assert_identical_graphs(on, off)


# --------------------------------------------------------------------------
# targeted invalidation semantics
# --------------------------------------------------------------------------


_THREE_THREADS = """
var x = 0; var y = 0; var rx = 0; var ry = 0;
func main() {
    cobegin
        { x = 1; }
        { rx = x; }
        { ry = y; }
}
"""


def _expand_memo(prog, config, access, opts, cache):
    return expand_memoized(prog, config, access, opts, cache, None, None)


def test_footprint_invalidation_is_targeted():
    """After one process writes ``x``, the cached expansion of the
    ``x``-reader is stale (footprint mismatch → recompute) while the
    ``y``-reader's cached expansion replays untouched."""
    prog = parse_program(_THREE_THREADS)
    access = access_analysis(prog)
    opts = ExploreOptions(policy="full", memo=True)
    cache = ExpandCache()

    init = initial_config(prog)
    [cobegin] = _expand_memo(prog, init, access, opts, cache)
    forked = cobegin.succ

    x_glob = ("g", prog.global_index("x"))
    y_glob = ("g", prog.global_index("y"))
    exps = _expand_memo(prog, forked, access, opts, cache)
    writer = next(
        e for e in exps if e.enabled and x_glob in e.writes
    )
    x_reader = next(
        e for e in exps if e.enabled and x_glob in e.reads
    )
    y_reader = next(
        e for e in exps if e.enabled and y_glob in e.reads
    )
    assert cache.hits == 0  # everything seen exactly once so far

    after_write = writer.succ
    inv0, hit0 = cache.invalidations, cache.hits
    # the x-reader's cached footprint pins x=0; the write made it 1
    assert cache.probe(after_write, x_reader.proc) is None
    assert cache.invalidations == inv0 + 1
    # the y-reader never consulted x; its entry is still valid
    entry = cache.probe(after_write, y_reader.proc)
    assert entry is not None
    assert cache.hits == hit0 + 1

    # and the replay is *exactly* what a fresh computation produces
    replayed = cache.replay(entry, y_reader.proc, after_write)
    [fresh] = [
        e
        for e in _expand(
            prog, after_write, access,
            ExploreOptions(policy="full", memo=False),
        )
        if e.proc.pid == y_reader.proc.pid
    ]
    assert replayed.succ == fresh.succ
    assert replayed.actions == fresh.actions
    assert replayed.reads == fresh.reads
    assert replayed.writes == fresh.writes


def test_disabled_expansion_is_memoized():
    """A blocked process (assume on a false flag) caches its disabled
    verdict and replays it while the flag stays false."""
    prog = parse_program(
        "var f = 0; var g = 0;"
        "func main() { cobegin { assume(f == 1); g = 1; } { f = 1; } }"
    )
    access = access_analysis(prog)
    opts = ExploreOptions(policy="full", memo=True)
    cache = ExpandCache()

    init = initial_config(prog)
    [cobegin] = _expand_memo(prog, init, access, opts, cache)
    forked = cobegin.succ
    exps = _expand_memo(prog, forked, access, opts, cache)
    f_glob = ("g", prog.global_index("f"))
    # the assume-blocked child, not the JOINING parent (whose footprint
    # is the children's statuses, untouched by the setter's store)
    blocked = next(
        e for e in exps if not e.enabled and f_glob in e.nes
    )
    setter = next(e for e in exps if e.enabled and e.proc is not blocked.proc)

    # the setter's step flips f: the blocked process's footprint (f=0)
    # must invalidate, not replay a stale "disabled"
    inv0 = cache.invalidations
    assert cache.probe(setter.succ, blocked.proc) is None
    assert cache.invalidations == inv0 + 1
    fresh = _expand_memo(prog, setter.succ, access, opts, cache)
    now = next(e for e in fresh if e.proc.pid == blocked.proc.pid)
    assert now.enabled


def test_cache_eviction_bounds_size():
    cache = ExpandCache(max_procs=2, max_entries_per_proc=1)
    prog = parse_program(
        "var a = 0; var b = 0; var c = 0;"
        "func main() { cobegin { a = 1; } { b = 1; } { c = 1; } }"
    )
    access = access_analysis(prog)
    opts = ExploreOptions(policy="full", memo=True)
    init = initial_config(prog)
    [cobegin] = _expand_memo(prog, init, access, opts, cache)
    _expand_memo(prog, cobegin.succ, access, opts, cache)
    # >2 distinct process keys were filled through a 2-key cache
    assert cache.evictions > 0
    assert cache.size <= 2


def test_memo_hit_counters_flow_to_metrics():
    from repro.metrics import MetricsObserver

    mo = MetricsObserver()
    explore(
        _program("philosophers_3"),
        options=ExploreOptions(policy="stubborn", coarsen=True, memo=True),
        observers=(mo,),
    )
    reg = mo.registry
    assert reg.value("expand.cache_hits") > 0
    assert 0.0 < reg.value("expand.cache_hit_rate") <= 1.0


# --------------------------------------------------------------------------
# export/import (the analysis service's warm store)
# --------------------------------------------------------------------------


def test_export_state_round_trip_warms_a_fresh_cache():
    prog = _program("philosophers_3")
    opts = ExploreOptions(policy="stubborn", coarsen=True, memo=True)
    cold_cache = ExpandCache()
    cold = explore(prog, options=opts, expand_cache=cold_cache)
    state = cold_cache.export_state()
    assert state["schema"] == ExpandCache.EXPORT_SCHEMA

    warm_cache = ExpandCache()
    imported = warm_cache.load_state(state)
    assert imported == cold_cache.size > 0
    warm = explore(_program("philosophers_3"), options=opts,
                   expand_cache=warm_cache)
    # the pre-warmed run replays instead of recomputing, and the graph
    # is bit-identical
    assert warm_cache.hits > cold_cache.hits
    assert warm.graph.configs == cold.graph.configs
    assert warm.graph.edges == cold.graph.edges


def test_load_state_rejects_unknown_schema_and_filters():
    prog = _program("mutex_counter")
    opts = ExploreOptions(policy="stubborn", memo=True)
    cache = ExpandCache()
    explore(prog, options=opts, expand_cache=cache)
    state = cache.export_state()

    assert ExpandCache().load_state({"schema": "repro.expandcache/99"}) == 0
    assert ExpandCache().load_state("garbage") == 0
    # the keep predicate gates whole process keys
    assert ExpandCache().load_state(state, keep=lambda proc: False) == 0

    # a damaged row is skipped, never raised
    proc, rows = state["entries"][0]
    state["entries"][0] = (proc, [rows[0][:3]] + list(rows[1:]))
    partial = ExpandCache()
    assert partial.load_state(state) == cache.size - 1
