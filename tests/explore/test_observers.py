"""Observer-protocol tests."""

from repro.explore import Observer, explore
from repro.lang import parse_program


class Recorder(Observer):
    def __init__(self):
        self.configs = []
        self.edges = []
        self.done = 0

    def on_config(self, graph, cid, config, fresh, status):
        self.configs.append((cid, fresh, status))

    def on_edge(self, graph, src, dst, actions):
        self.edges.append((src, dst, tuple(a.label for a in actions)))

    def on_done(self, graph):
        self.done += 1


def test_observer_lifecycle(fig2):
    rec = Recorder()
    r = explore(fig2, "full", observers=(rec,))
    assert rec.done == 1
    assert len(rec.edges) == r.stats.num_edges
    # every config announced fresh exactly once, the initial one included
    fresh_ids = [cid for cid, fresh, _ in rec.configs if fresh]
    assert len(fresh_ids) == len(set(fresh_ids)) == r.stats.num_configs
    assert rec.configs[0][0] == r.graph.initial


def test_observer_terminal_notifications():
    prog = parse_program("var g = 0; func main() { g = 1; }")
    rec = Recorder()
    explore(prog, "full", observers=(rec,))
    statuses = [st for _, _, st in rec.configs if st is not None]
    assert statuses == ["terminated"]


def test_observer_with_sleep_policy(fig2):
    rec = Recorder()
    r = explore(fig2, "stubborn", sleep=True, observers=(rec,))
    assert rec.done == 1
    assert len(rec.edges) == r.stats.num_edges


def test_multiple_observers(fig2):
    a, b = Recorder(), Recorder()
    explore(fig2, "full", observers=(a, b))
    assert a.edges == b.edges


def test_transition_log_observer_rename(fig2):
    # TraceObserver is the backward-compatible alias for the renamed
    # TransitionLogObserver (the name now belongs to repro.trace)
    from repro.explore import TraceObserver, TransitionLogObserver

    assert TraceObserver is TransitionLogObserver
    ob = TransitionLogObserver()
    r = explore(fig2, "full", observers=(ob,))
    assert len(ob.edges) == r.stats.num_edges
