"""Narrowing-pass tests: bounds widened to ∞ are recovered."""

from repro.absdomain import AbsValueDomain, IntervalDomain
from repro.abstraction import AbsOptions, fold_explore, taylor_key
from repro.explore import ExploreOptions, explore
from repro.lang import parse_program


def _fold(prog, narrow_passes):
    dom = AbsValueDomain(IntervalDomain())
    return dom, fold_explore(
        prog,
        AbsOptions(dom=dom),
        key_fn=taylor_key,
        narrow_passes=narrow_passes,
    )


BOUNDED_LOOP = """
var g = 0;
func main() { while (g < 10) { g = g + 1; } r: skip; }
"""


def test_widening_overshoots_bounded_loop():
    dom, folded = _fold(parse_program(BOUNDED_LOOP), narrow_passes=0)
    finals = folded.terminal_states()
    assert finals
    g = finals[0].aglobals[0][0]
    # without narrowing, the upper bound was widened away: g = [10, +inf)
    assert g[1] is None


def test_narrowing_recovers_bound():
    dom, folded = _fold(parse_program(BOUNDED_LOOP), narrow_passes=10)
    assert folded.stats.narrowings >= 1
    finals = folded.terminal_states()
    g = finals[0].aglobals[0][0]
    assert g == (10, 10)  # exact: the guard refinement + narrowing


def test_narrowing_stays_sound():
    prog = parse_program(BOUNDED_LOOP)
    dom, folded = _fold(prog, narrow_passes=10)
    concrete = explore(prog, options=ExploreOptions(policy="full"))
    for cfg in concrete.graph.configs:
        if cfg.fault is None:
            assert folded.covers_config(cfg)


def test_narrowing_sound_on_concurrent_program():
    prog = parse_program(
        """
        var g = 0; var done = 0;
        func main() {
            cobegin
            { while (g < 4) { g = g + 1; } }
            { done = 1; }
        }
        """
    )
    dom, folded = _fold(prog, narrow_passes=10)
    concrete = explore(prog, "full")
    for cfg in concrete.graph.configs:
        if cfg.fault is None:
            assert folded.covers_config(cfg)


def test_narrowing_noop_when_nothing_widened():
    prog = parse_program("var g = 0; func main() { g = 5; }")
    dom, folded = _fold(prog, narrow_passes=2)
    finals = folded.terminal_states()
    assert finals[0].aglobals[0][0] == (5, 5)
