"""Abstract transition-function tests."""

from repro.absdomain import AbsValueDomain, FlatConstDomain, IntervalDomain
from repro.abstraction import AbsOptions, abstract_successors, initial_abs_config
from repro.lang import parse_program


def setup(src, num=None):
    prog = parse_program(src)
    dom = AbsValueDomain(num if num is not None else FlatConstDomain())
    return prog, AbsOptions(dom=dom), initial_abs_config(prog, dom)


def step(prog, opts, acfg):
    return abstract_successors(prog, acfg, opts)


def test_assign_global_strong_update():
    prog, opts, cfg = setup("var g = 0; func main() { g = 5; }")
    (succ, info), = step(prog, opts, cfg)
    assert opts.dom.contains(succ.aglobals[0], 5)
    assert not opts.dom.contains(succ.aglobals[0], 0)


def test_branch_on_unknown_forks():
    prog, opts, cfg = setup(
        "var c = 0; var g = 0; func main() { cobegin { c = 1; } { if (c) { g = 1; } else { g = 2; } } }"
    )
    # drive: spawn
    (cfg1, _), = step(prog, opts, cfg)
    # branch condition c is 0-or-1 depending on sibling: find the branch step
    succs = step(prog, opts, cfg1)
    # one successor for c=1 thread, two for the if (may-true and may-false)
    by_label = {}
    for s, info in succs:
        by_label.setdefault(info.label, []).append(s)
    branch_label = [l for l in by_label if len(by_label[l]) == 2]
    assert not branch_label  # c still definitely 0 before sibling write
    # after sibling writes 1, the branch must fork — walk one more level
    forked = False
    for s, info in succs:
        for s2, info2 in step(prog, opts, s):
            pass
    # direct check: abstract truth of (c) after join of 0 and 1 forks
    dom = opts.dom
    both = dom.join(dom.const(0), dom.const(1))
    assert dom.truth(both) == (True, True)


def test_assume_blocks_on_definite_false():
    prog, opts, cfg = setup("var g = 0; func main() { assume(g == 1); }")
    assert step(prog, opts, cfg) == []


def test_assume_passes_on_maybe():
    prog, opts, cfg = setup(
        "var g = 0; func main() { cobegin { g = 1; } { assume(g == 1); g = 2; } }"
    )
    (cfg1, _), = step(prog, opts, cfg)
    succs = step(prog, opts, cfg1)
    # only the writer can move first (assume g==1 is definitely false)
    assert len(succs) == 1


def test_acquire_release_abstract():
    prog, opts, cfg = setup("var l = 0; func main() { acquire(l); release(l); }")
    (cfg1, _), = step(prog, opts, cfg)
    assert opts.dom.contains(cfg1.aglobals[0], 1)
    (cfg2, _), = step(prog, opts, cfg1)
    assert opts.dom.contains(cfg2.aglobals[0], 0)


def test_alloc_single_then_summary():
    prog, opts, cfg = setup(
        "var p = 0; var i = 0; func main() { while (i < 2) { m1: p = malloc(1); i = i + 1; } }",
        num=IntervalDomain(),
    )
    # walk a few steps until two allocations happened
    frontier = [cfg]
    seen_single = seen_many = False
    for _ in range(12):
        nxt = []
        for c in frontier:
            for s, _ in step(prog, opts, c):
                obj = s.heap_obj("m1")
                if obj is not None:
                    if obj.single:
                        seen_single = True
                    else:
                        seen_many = True
                nxt.append(s)
        frontier = nxt[:20]
    assert seen_single and seen_many


def test_call_and_return_value():
    prog, opts, cfg = setup(
        "var r = 0; func f(a) { return a + 1; } func main() { r = f(4); }"
    )
    c = cfg
    for _ in range(3):  # call, return, (implicit main return)
        succs = step(prog, opts, c)
        if not succs:
            break
        c = succs[0][0]
    assert opts.dom.contains(c.aglobals[0], 5)


def test_multicell_object_never_strong_updated():
    # regression: writing one cell of a 2-cell object must JOIN into the
    # summary — a strong update would drop the other cell's value
    prog, opts, cfg = setup(
        "var p = 0; var r = 0; func main() { m: p = malloc(2); p[0] = 9; r = p[1]; }"
    )
    c = cfg
    for _ in range(3):
        c = step(prog, opts, c)[0][0]
    obj = c.heap_obj("m")
    assert not obj.single_cell
    assert opts.dom.contains(obj.val, 0)  # cell 1 is still zero
    assert opts.dom.contains(obj.val, 9)


def test_single_cell_object_strong_updated():
    prog, opts, cfg = setup(
        "var p = 0; func main() { m: p = malloc(1); *p = 9; }"
    )
    c = cfg
    for _ in range(2):
        c = step(prog, opts, c)[0][0]
    obj = c.heap_obj("m")
    assert obj.single_cell and obj.single
    assert opts.dom.contains(obj.val, 9)
    assert not opts.dom.contains(obj.val, 0)  # strong update applied


def test_weak_update_on_summarized_site():
    prog, opts, cfg = setup(
        """
        var p = 0; var q = 0;
        func main() { m1: p = malloc(1); m1b: q = malloc(1); *p = 3; }
        """
    )
    # different sites: both single → strong updates; rewrite through p
    c = cfg
    for _ in range(3):
        c = step(prog, opts, c)[0][0]
    obj = c.heap_obj("m1")
    assert opts.dom.contains(obj.val, 3)


def test_first_class_call_forks_per_callee():
    prog, opts, cfg = setup(
        """
        var r = 0; var w = 0;
        func a(v) { return 1; }
        func b(v) { return 2; }
        func main() { var f = 0; if (w) { f = a; } else { f = b; } r = f(0); }
        """
    )
    # drive to the call; with w == 0 only branch b is taken
    c = cfg
    while True:
        succs = step(prog, opts, c)
        if not succs:
            break
        c = succs[0][0]
    assert opts.dom.contains(c.aglobals[0], 2)


def test_thread_end_and_join():
    prog, opts, cfg = setup(
        "var g = 0; func main() { cobegin { g = 1; } { g = 2; } g = 3; }"
    )
    # exhaustive abstract walk must reach a terminated config with g=3
    from repro.abstraction import fold_explore, taylor_key

    res = fold_explore(prog, opts, key_fn=taylor_key)
    finals = res.terminal_states()
    assert finals
    assert any(opts.dom.contains(f.aglobals[0], 3) for f in finals)
