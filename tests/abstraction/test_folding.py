"""Folding-driver tests (§6): Taylor states, coverage, widening."""

import pytest

from repro.absdomain import AbsValueDomain, FlatConstDomain, IntervalDomain
from repro.abstraction import (
    AbsOptions,
    alpha_config,
    concurrency_states,
    fold_explore,
    taylor_explore,
    taylor_key,
)
from repro.explore import explore
from repro.lang import parse_program
from repro.programs.paper import fig3_folding


def test_fig3_quotient_matches_abstract(analysis_result=None):
    prog = fig3_folding()
    concrete = explore(prog, "full")
    quotient = concurrency_states(concrete.graph)
    folded = taylor_explore(prog)
    assert len(quotient) < concrete.stats.num_configs  # folding merges
    assert folded.stats.num_states == len(quotient)


def test_taylor_covers_all_concrete_configs():
    prog = fig3_folding()
    concrete = explore(prog, "full")
    folded = taylor_explore(prog)
    for cfg in concrete.graph.configs:
        if cfg.fault is None:
            assert folded.covers_config(cfg)


def test_coverage_on_pointer_program(example8):
    concrete = explore(example8, "full")
    folded = taylor_explore(example8)
    for cfg in concrete.graph.configs:
        if cfg.fault is None:
            assert folded.covers_config(cfg)


def test_interval_terminates_on_unbounded_counter():
    prog = parse_program(
        "var g = 0; func main() { while (true) { g = g + 1; } }"
    )
    dom = AbsValueDomain(IntervalDomain())
    folded = taylor_explore(prog, dom)
    assert folded.stats.num_states < 20
    assert folded.stats.widenings > 0


def test_unbounded_counter_covered_by_interval():
    prog = parse_program(
        "var g = 0; func main() { while (true) { g = g + 1; } }"
    )
    from repro.explore import ExploreOptions

    dom = AbsValueDomain(IntervalDomain())
    folded = taylor_explore(prog, dom)
    concrete = explore(prog, options=ExploreOptions(policy="full", max_configs=60))
    for cfg in concrete.graph.configs:
        if cfg.fault is None:
            assert folded.covers_config(cfg)


def test_flat_domain_would_not_terminate_without_key_bound():
    # with the flat domain the counter's global goes to TOP after the
    # widening threshold — the table stays finite
    prog = parse_program(
        "var g = 0; func main() { while (true) { g = g + 1; } }"
    )
    folded = taylor_explore(prog)
    assert folded.stats.num_states < 20


def test_assert_warning_surfaces():
    prog = parse_program(
        "var g = 0; func main() { cobegin { g = 1; } { a1: assert(g == 0); } }"
    )
    folded = taylor_explore(prog)
    assert any("a1" in w for w in folded.warnings)


def test_no_warning_when_assert_safe():
    prog = parse_program("var g = 1; func main() { a1: assert(g == 1); }")
    folded = taylor_explore(prog)
    assert folded.warnings == []


def test_deref_warning():
    prog = parse_program("var p = 0; var r = 0; func main() { r = *p; }")
    folded = taylor_explore(prog)
    assert any("deref" in w for w in folded.warnings)


def test_alpha_config_roundtrip_shape(fig2):
    from repro.semantics import initial_config

    dom = AbsValueDomain(FlatConstDomain())
    acfg = alpha_config(dom, initial_config(fig2))
    assert len(acfg.aglobals) == 4
    assert len(acfg.procs) == 1


def test_terminal_states_reported(fig2):
    folded = taylor_explore(fig2)
    assert folded.terminal_states()


def test_max_states_guard():
    prog = parse_program(
        "var g = 0; func main() { while (true) { g = g + 1; } }"
    )
    dom = AbsValueDomain(IntervalDomain())
    with pytest.raises(RuntimeError):
        fold_explore(
            prog,
            AbsOptions(dom=dom),
            key_fn=taylor_key,
            max_states=1,
        )


def test_fold_metrics_hit_counts():
    from repro.metrics import MetricsRegistry

    prog = fig3_folding()
    reg = MetricsRegistry()
    res = fold_explore(
        prog,
        AbsOptions(dom=AbsValueDomain(FlatConstDomain())),
        key_fn=taylor_key,
        metrics=reg,
    )
    # every distinct key except the seeded initial one was a miss once
    assert reg.counter("fold.misses").value == res.stats.num_states - 1
    assert reg.counter("fold.hits").value > 0
    # constants over a bounded program: no widening needed
    assert "fold.widenings" not in reg


def test_fold_metrics_default_off():
    prog = fig3_folding()
    res = fold_explore(
        prog, AbsOptions(dom=AbsValueDomain(FlatConstDomain())), key_fn=taylor_key
    )
    assert res.stats.num_states > 0  # metrics=None path unchanged
