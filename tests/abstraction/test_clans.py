"""Clan-folding tests (§6.2)."""

import pytest

from repro.abstraction import clan_explore, taylor_explore
from repro.explore import explore
from repro.lang import parse_program
from repro.programs.synthetic import identical_tasks


def test_clan_state_count_independent_of_n():
    counts = {n: clan_explore(identical_tasks(n, steps=1)).stats.num_states
              for n in (2, 3, 4)}
    assert counts[2] == counts[3] == counts[4]


def test_clan_beats_full_for_many_tasks():
    prog = identical_tasks(6, steps=1)
    full = explore(prog, "full")
    clan = clan_explore(prog)
    assert clan.stats.num_states < full.stats.num_configs


def test_single_task_matches_taylor():
    prog = identical_tasks(1)
    assert (
        clan_explore(prog).stats.num_states
        == taylor_explore(prog).stats.num_states
    )


def test_distinct_branches_not_grouped():
    prog = parse_program(
        "var a = 0; var b = 0; func main() { cobegin { a = 1; } { b = 2; } }"
    )
    folded = clan_explore(prog)
    # different code: two separate clans spawn
    init_key = folded.initial_key
    spawned = [
        cfg for cfg in folded.table.values() if len(cfg.procs) == 3
    ]
    assert spawned  # parent + two singleton clans


def test_clan_visited_points_cover_concrete_labels():
    # clan folding deliberately identifies the identical branches, so
    # their distinct branch-region pcs in `main` collapse onto the
    # representative branch; coverage is checked on the *shared* code
    # (the task function) and on termination.
    prog = identical_tasks(3, steps=1)
    folded = clan_explore(prog)
    concrete = explore(prog, "full")
    concrete_task_points = set()
    for cfg in concrete.graph.configs:
        for p in cfg.procs:
            if p.frames:
                top = p.frames[-1]
                if top.func != "main":
                    concrete_task_points.add((top.func, top.pc, p.status))
    visited = folded.visited_points()
    assert concrete_task_points <= visited
    assert folded.terminal_states()


def test_identical_branches_same_literal_code_grouped():
    prog = parse_program(
        "var g = 0; func main() { cobegin { g = g + 1; } { g = g + 1; } { g = g + 1; } }"
    )
    folded = clan_explore(prog)
    # one clan for the three branches: spawn yields 2 processes total
    spawned = [cfg for cfg in folded.table.values() if len(cfg.procs) == 2]
    assert spawned
