"""Guard-refinement tests (assume/branch conditions meet into stores)."""

from repro.absdomain import (
    AbsValueDomain,
    FlatConstDomain,
    IntervalDomain,
    SignDomain,
)
from repro.abstraction import taylor_explore
from repro.analyses.constprop import constants_at
from repro.lang import parse_program


def final_global(folded, dom, index=0):
    vals = [cfg.aglobals[index] for cfg in folded.terminal_states()]
    out = dom.bottom
    for v in vals:
        out = dom.join(out, v)
    return out


def test_assume_eq_refines_to_constant():
    # g is unknown (0 or 1 from the race), but after assume(g == 1)
    # the flat domain knows it exactly
    prog = parse_program(
        """
        var g = 0; var r = 0;
        func main() { cobegin { g = 1; } { assume(g == 1); r = g + 1; } }
        """
    )
    cp = constants_at(prog)
    # at the statement after the assume, g is the constant 1 → r = 2
    folded = cp.fold
    dom = AbsValueDomain(FlatConstDomain())
    r_final = final_global(taylor_explore(prog, dom), dom, index=1)
    assert dom.contains(r_final, 2)
    assert not dom.contains(r_final, 1)


def test_assume_ge_refines_interval():
    prog = parse_program(
        """
        var g = 0; var r = 0;
        func main() {
            cobegin { g = 7; }
            { assume(g >= 5); r = g; }
        }
        """
    )
    dom = AbsValueDomain(IntervalDomain())
    folded = taylor_explore(prog, dom)
    r_final = final_global(folded, dom, index=1)
    assert not dom.contains(r_final, 0)  # r >= 5 is known
    assert dom.contains(r_final, 7)


def test_branch_then_refines():
    # inside the then-branch of `if (c == 1)`, c IS 1 even though the
    # race makes it ⊤ at the test — refinement must silence the assert
    prog = parse_program(
        """
        var c = 0;
        func main() {
            cobegin { c = 1; }
            { if (c == 1) { a1: assert(c == 1); } else { skip; } }
        }
        """
    )
    folded = taylor_explore(prog)
    assert not any("a1" in w for w in folded.warnings)


def test_else_branch_negation_refines_sign():
    prog = parse_program(
        """
        var g = 0; var r = 0;
        func main() {
            cobegin { g = 0 - 3; }
            { if (g >= 0) { r = 1; } else { r = g; } }
        }
        """
    )
    dom = AbsValueDomain(SignDomain())
    folded = taylor_explore(prog, dom)
    r_final = final_global(folded, dom, index=1)
    # in the else branch g < 0: r cannot be 0 there; joined with the
    # then branch's 1, zero stays excluded
    assert not dom.contains(r_final, 0)


def test_infeasible_refinement_prunes_path():
    # assume(g == 1) while g is definitely 0: the truth test alone
    # (flat domain) already blocks; with intervals the refinement path
    # is exercised via a range
    prog = parse_program(
        "var g = 3; var r = 0; func main() { assume(g < 2); r = 1; }"
    )
    dom = AbsValueDomain(IntervalDomain())
    folded = taylor_explore(prog, dom)
    assert folded.terminal_states() == []  # blocked forever


def test_reversed_operand_order():
    prog = parse_program(
        """
        var g = 0; var r = 0;
        func main() { cobegin { g = 9; } { assume(5 <= g); r = g; } }
        """
    )
    dom = AbsValueDomain(IntervalDomain())
    folded = taylor_explore(prog, dom)
    r_final = final_global(folded, dom, index=1)
    assert not dom.contains(r_final, 4)


def test_refinement_never_loses_concrete_states(fig2):
    from repro.explore import explore

    folded = taylor_explore(fig2, AbsValueDomain(IntervalDomain()))
    concrete = explore(fig2, "full")
    for cfg in concrete.graph.configs:
        if cfg.fault is None:
            assert folded.covers_config(cfg)
