#!/usr/bin/env python3
"""Interference-aware constant folding as a source transformation (§7).

The introduction's cautionary tale, resolved: a sequential optimizer
would fold the busy-wait flag and break the program; the analysis-driven
optimizer substitutes only constants that hold under *every*
interleaving — it leaves the spin loop intact while still folding the
genuinely stable value (x == 42 after the wait).

Run:  python examples/optimizer.py
"""

from repro.analyses.optimize import optimize_program
from repro.explore import explore
from repro.lang import parse_program
from repro.programs import paper


def show(name, program) -> None:
    print(f"== {name} ==")
    print("original:")
    print("\n".join("  " + l for l in (program.source or "").strip().splitlines()))
    result = optimize_program(program)
    print(f"\n{result.describe()}\n")
    print("optimized:")
    print("\n".join("  " + l for l in result.source.strip().splitlines()))

    before = explore(program, "full").final_stores()
    after = explore(parse_program(result.source), "full").final_stores()
    print(f"\nsemantics preserved: {before == after}")
    print()


def main() -> None:
    show("busy-wait (paper introduction)", paper.intro_busywait_loop())
    show(
        "sequential constant chain",
        parse_program(
            """
            var a = 0; var b = 0; var c = 0;
            func main() {
                a = 5;
                b = a * 2;
                c = b + a;
            }
            """
        ),
    )


if __name__ == "__main__":
    main()
