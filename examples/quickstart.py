#!/usr/bin/env python3
"""Quickstart: parse a cobegin program, explore its state space, and
run the paper's analyses on it.

Run:  python examples/quickstart.py
"""

from repro import explore, parse_program
from repro.analyses.report import full_report
from repro.explore import ExploreOptions
from repro.semantics import StepOptions, run_program

SOURCE = """
// The Shasha-Snir segments (paper Figure 2): two threads sharing A, B.
var A = 0; var B = 0; var x = 0; var y = 0;

func main() {
    cobegin
    { s1: A = 1; s2: y = B; }
    { s3: B = 1; s4: x = A; }
}
"""


def main() -> None:
    program = parse_program(SOURCE)

    # 1. Just run it (one interleaving, reproducible):
    run = run_program(program, scheduler="random", seed=1)
    print("one run:", dict(zip(program.global_names, run.config.globals)))

    # 2. Explore ALL interleavings and compare the reductions:
    for policy, coarsen in [("full", False), ("stubborn", False), ("stubborn", True)]:
        result = explore(program, policy, coarsen=coarsen)
        print(
            f"{result.options.describe():18s} "
            f"{result.stats.num_configs:4d} configurations, "
            f"outcomes (x,y) = {sorted(result.global_values('x', 'y'))}"
        )
    # (0,0) never appears: under sequential consistency only three of
    # the four outcomes are legal — the paper's motivating observation.

    # 3. The full §5/§7 analysis report (side effects, dependences,
    #    races, lifetimes):
    analysis = explore(
        program,
        options=ExploreOptions(
            policy="full", step=StepOptions(gc=False, track_procstrings=True)
        ),
    )
    print()
    print(full_report(program, analysis))


if __name__ == "__main__":
    main()
