#!/usr/bin/env python3
"""Access-anomaly (race) detection and the busy-wait optimization trap.

Two demonstrations:

1. the classic lost-update race, found as simultaneously-enabled
   conflicting accesses; adding a lock removes every anomaly;
2. the paper's introduction example: a sequential optimizer would hoist
   the busy-wait flag load out of the loop (it looks loop-invariant);
   the interference-aware analysis flags the hoist as unsafe — while
   still proving the useful constant (x == 42 after the wait).

Run:  python examples/race_detection.py
"""

from repro.analyses.constprop import constants_at, licm_report
from repro.analyses.races import races
from repro.explore import explore
from repro.programs import paper


def show_races(name, program) -> None:
    result = explore(program, "full")
    found = races(program, result)
    print(f"== {name}: {len(found)} anomalies ==")
    for r in found:
        kind = "write/write" if r.both_write else "read/write"
        print(f"  {{{r.label_a}, {r.label_b}}} on {r.loc} ({kind})")
    outcomes = sorted(result.terminal_globals())
    print(f"  outcomes: {outcomes}")
    print()


def main() -> None:
    show_races("racy counter (lost update)", paper.racy_counter())
    show_races("locked counter", paper.mutex_counter())

    program = paper.intro_busywait_loop()
    print("== busy-wait loop (paper introduction) ==")
    for l in licm_report(program):
        if not l.seq_invariant:
            continue
        print(f"  loop {l.loop_label}: sequential analysis calls "
              f"{list(l.seq_invariant)} loop-invariant")
        print(f"    safe to hoist: {list(l.safe)}")
        print(f"    UNSAFE to hoist: {list(l.unsafe)} "
              f"(written by a concurrent thread)")
    cp = constants_at(program)
    print(f"  at the loop head, s is constant: {cp.constant('l1', 's')}")
    print(f"  after the wait, x is constant:  {cp.constant('r1', 'x')}")


if __name__ == "__main__":
    main()
