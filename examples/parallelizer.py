#!/usr/bin/env python3
"""Further parallelization of procedure calls (paper Example 15).

Analyzes a cobegin of function calls, finds which call pairs interfere
(through their callees' side effects), inserts the Shasha–Snir delays
needed for sequential consistency, and prints a maximal parallel
schedule of the calls.

Run:  python examples/parallelizer.py
"""

from repro import parse_program
from repro.analyses.conflictgraph import conflict_graph
from repro.analyses.parallelize import further_parallelize
from repro.analyses.sideeffects import side_effects
from repro.explore import explore

SOURCE = """
// Figure 8: the Figure-2 segments with assignments replaced by calls.
var g1 = 0; var g2 = 0; var g3 = 0; var g4 = 0;

func f1() { u1: g1 = g1 + 1; }
func f2() { u2: g2 = 2; }
func f3() { u3: g4 = g2 + 1; }
func f4() { u4: g1 = g1 * 2; }

func main() {
    cobegin
    { s1: f1(); s2: f2(); }
    { s3: f3(); s4: f4(); }
}
"""


def main() -> None:
    program = parse_program(SOURCE)
    result = explore(program, "full")

    print("per-function side effects (§5.1):")
    eff = side_effects(program, result)
    for fname in ("f1", "f2", "f3", "f4"):
        e = eff.by_func[fname]
        print(f"  {fname}: ref={sorted(e.ref)} mod={sorted(e.mod)}")

    sched = further_parallelize(program, result)
    print("\ncall-pair dependences (Example 15 expects (s1,s4) and (s2,s3)):")
    print(" ", sorted(tuple(sorted(p)) for p in sched.dependent_pairs))

    print("\nmaximal parallel schedule:")
    for i, layer in enumerate(sched.layers):
        print(f"  step {i}: " + " || ".join(layer))

    cg = conflict_graph(program, result)
    print("\n[SS88] delay insertion (orders the hardware must enforce):")
    for a, b in cg.minimal_delays():
        print(f"  delay {a} -> {b}")
    print("\ncritical cycles found:", cg.critical_cycles())


if __name__ == "__main__":
    main()
