#!/usr/bin/env python3
"""Dining philosophers: state-space explosion and its relief.

Generates the n-philosophers program (each fork a global lock), then
compares full interleaving against the paper's reductions — stubborn
sets (Algorithm 1), virtual coarsening, sleep sets — checking that the
circular-wait deadlock survives every reduction.

Run:  python examples/dining_philosophers.py [max_n]
"""

import sys
import time

from repro.explore import explore
from repro.programs.philosophers import philosophers, philosophers_source


def main() -> None:
    max_n = int(sys.argv[1]) if len(sys.argv) > 1 else 5

    print("the generated program for n=2:\n")
    print(philosophers_source(2))
    print()

    header = (
        f"{'n':>2}  {'full':>8}  {'stubborn':>8}  {'+coarsen+sleep':>14}  "
        f"{'reduction':>9}  {'deadlock?':>9}  {'time':>6}"
    )
    print(header)
    print("-" * len(header))
    for n in range(2, max_n + 1):
        full = explore(philosophers(n), "full")
        stub = explore(philosophers(n), "stubborn")
        t0 = time.perf_counter()
        best = explore(philosophers(n), "stubborn", coarsen=True, sleep=True)
        dt = time.perf_counter() - t0
        assert best.final_stores() == full.final_stores(), "reduction changed results!"
        print(
            f"{n:>2}  {full.stats.num_configs:>8}  {stub.stats.num_configs:>8}  "
            f"{best.stats.num_configs:>14}  "
            f"{full.stats.num_configs / best.stats.num_configs:>8.1f}x  "
            f"{'yes' if best.stats.num_deadlocks else 'NO':>9}  {dt:>5.1f}s"
        )

    print(
        "\nEvery reduction preserves the result configurations - including"
        "\nthe circular-wait deadlock - while the reduction factor grows"
        "\nwith n (the paper's §2.2 claim, after [Val88])."
    )


if __name__ == "__main__":
    main()
