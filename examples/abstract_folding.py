#!/usr/bin/env python3
"""State folding by abstract interpretation (paper §6).

Three foldings on display:

1. Taylor concurrency states (§6.1): configurations differing only in
   data merge — the Figure 3 "dangling links";
2. clans (§6.2, McDowell): identical tasks collapse, making the folded
   space independent of how many the program forks;
3. value-domain folding with widening: an unbounded counter explored
   finitely in the interval domain, still covering every concrete state.

Run:  python examples/abstract_folding.py
"""

from repro import parse_program
from repro.absdomain import AbsValueDomain, IntervalDomain
from repro.abstraction import clan_explore, concurrency_states, taylor_explore
from repro.explore import ExploreOptions, explore
from repro.programs import paper
from repro.programs.synthetic import identical_tasks


def main() -> None:
    # 1. Taylor folding on Figure 3
    prog = paper.fig3_folding()
    concrete = explore(prog, "full")
    quotient = concurrency_states(concrete.graph)
    folded = taylor_explore(prog)
    print("Figure 3 folding:")
    print(f"  concrete configurations : {concrete.stats.num_configs}")
    print(f"  Taylor concurrency states: {len(quotient)}")
    print(f"  folded abstract explore  : {folded.stats.num_states}")
    covered = all(
        folded.covers_config(c) for c in concrete.graph.configs if c.fault is None
    )
    print(f"  covers every concrete configuration: {covered}")

    # 2. clans on n identical tasks
    print("\nclan folding (n identical tasks):")
    for n in (2, 4, 6):
        prog = identical_tasks(n, steps=1)
        full = explore(prog, options=ExploreOptions(policy="full", max_configs=150_000))
        clan = clan_explore(prog)
        full_txt = f">{150_000}" if full.stats.truncated else full.stats.num_configs
        print(f"  n={n}: full={full_txt:>7}  clan-folded={clan.stats.num_states}")

    # 3. widening on an unbounded counter
    prog = parse_program(
        "var g = 0; func main() { while (true) { g = g + 1; } }"
    )
    folded = taylor_explore(prog, AbsValueDomain(IntervalDomain()))
    print("\nunbounded counter, interval domain:")
    print(f"  folded states: {folded.stats.num_states} "
          f"(widenings: {folded.stats.widenings})")
    for cfg in folded.terminal_states():
        print("  terminal:", cfg)
    g_vals = sorted(
        {cfg.aglobals[0] for cfg in folded.table.values()}
    )
    print(f"  abstract values of g seen: {g_vals}")


if __name__ == "__main__":
    main()
