#!/usr/bin/env python3
"""Verifying Peterson's mutual exclusion — the paper's motivation made
concrete.

The introduction argues that restricted programming models (copy-in/
copy-out, loosely-coupled processes) cannot express "important classes
of algorithms, such as mutual exclusion" — which is why a framework
that analyzes *unrestricted* shared-variable programs matters.  Here
the framework earns its keep twice:

1. it **verifies** Peterson's algorithm: across all interleavings the
   critical-section assertion never fails;
2. on a broken variant (the turn handoff dropped) it **finds the bug**
   and prints the shortest interleaving that reaches the violation —
   then replays it step by step to prove the trace is real.

Run:  python examples/verify_peterson.py
"""

from repro.analyses.witness import fault_witness, replay
from repro.explore import explore
from repro.programs.classic import peterson, peterson_broken


def main() -> None:
    print("== Peterson's algorithm ==")
    prog = peterson()
    full = explore(prog, "full")
    reduced = explore(prog, "stubborn", coarsen=True, sleep=True)
    print(f"  full exploration:    {full.stats.num_configs} configurations")
    print(f"  reduced exploration: {reduced.stats.num_configs} configurations")
    print(f"  assertion violations: {full.stats.num_faults}")
    print(f"  deadlocks:            {full.stats.num_deadlocks}")
    print(f"  reductions agree:     {reduced.final_stores() == full.final_stores()}")
    assert full.stats.num_faults == 0
    print("  => mutual exclusion VERIFIED over every interleaving")

    print("\n== Peterson with the turn handoff removed ==")
    broken = peterson_broken()
    r = explore(broken, "full")
    print(f"  assertion violations: {r.stats.num_faults}")
    w = fault_witness(r)
    assert w is not None
    print("  shortest interleaving reaching the violation:")
    print(w.describe())
    final = replay(broken, w)
    print(f"  replayed concretely -> fault: {final.fault}")


if __name__ == "__main__":
    main()
