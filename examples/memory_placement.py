#!/usr/bin/env python3
"""Object lifetimes and memory placement (paper §5.3 and §7).

Analyzes the pointer program of Example 8 plus a richer program with
three allocation shapes: an object that dies inside its creating
function (stack-allocatable, goes on the deallocation list), one that
escapes to its caller, and one shared between concurrent threads (must
live at a memory level visible to both).

Run:  python examples/memory_placement.py
"""

from repro.analyses.lifetime import lifetimes
from repro.analyses.memplace import placements
from repro.explore import ExploreOptions, explore
from repro.programs import paper
from repro.semantics import StepOptions
from repro.semantics.procstring import pretty


def analyze(name, program):
    print(f"== {name} ==")
    result = explore(
        program,
        options=ExploreOptions(
            policy="full", step=StepOptions(gc=False, track_procstrings=True)
        ),
    )
    lts = lifetimes(program, result)
    for oid, lt in sorted(lts.objects.items()):
        print(
            f"  object {oid}: born in {lt.birth_func} "
            f"(birthdate: {pretty(lt.birth_ps)})"
        )
        print(
            f"    escapes creator: {lt.escapes_creator}   "
            f"multi-thread: {lt.multi_thread}   "
            f"accessors: {sorted(lt.accessor_pids)}"
        )
    print("  placements:")
    for place in placements(lts).values():
        print(f"    {place.describe()}")
    dealloc = lts.dealloc_lists()
    if dealloc:
        print("  deallocation lists (free at function exit):")
        for fname, sites in sorted(dealloc.items()):
            print(f"    {fname}: {', '.join(sites)}")
    print()


def main() -> None:
    analyze("Example 8 (b1 = site s1, b2 = site s3)", paper.example8_pointers())
    analyze("lifetime extents (local / escaping / thread-shared)",
            paper.lifetime_extents())
    print(
        "The paper's §7 conclusion: b1 must be allocated at a memory level\n"
        "visible to both threads; b2 can be allocated locally."
    )


if __name__ == "__main__":
    main()
