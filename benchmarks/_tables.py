"""Shared helpers for the benchmark harness.

Each benchmark regenerates one experiment's table (DESIGN.md §4) and
both prints it and writes it under ``benchmarks/results/`` so the
numbers quoted in EXPERIMENTS.md can be re-derived with one command.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit_table(name: str, title: str, headers: list[str], rows: list[list]) -> str:
    """Format, print, and persist an experiment table."""
    widths = [len(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as fh:
        fh.write(text)
    return text
