"""E13 — the §1 motivation: analyze (not forbid) mutual exclusion.

The paper's introduction: restricted models (copy-in/copy-out [SW91],
loosely-coupled processes [Mis91]) cannot express "important classes of
algorithms, such as mutual exclusion or shared variable
synchronization" — the framework must handle them directly.  This bench
verifies the classic algorithms across all interleavings and records
what the reductions save while agreeing on every outcome.
"""

from _tables import emit_table

from repro.explore import explore
from repro.programs.classic import (
    barrier,
    peterson,
    peterson_broken,
    producer_consumer,
)

CASES = [
    ("peterson", peterson, 0),
    ("peterson_broken", peterson_broken, None),  # faults expected
    ("producer_consumer(2)", lambda: producer_consumer(2), 0),
    ("barrier(2)", lambda: barrier(2), 0),
    ("barrier(3)", lambda: barrier(3), 0),
]


def test_e13_sync_algorithms(benchmark):
    rows = []
    for name, make, expected_faults in CASES:
        prog = make()
        full = explore(prog, "full")
        red = explore(prog, "stubborn", coarsen=True, sleep=True)
        assert red.final_stores() == full.final_stores()
        if expected_faults is not None:
            assert full.stats.num_faults == expected_faults
        else:
            assert full.stats.num_faults > 0
        rows.append(
            [
                name,
                full.stats.num_configs,
                red.stats.num_configs,
                full.stats.num_faults,
                full.stats.num_deadlocks,
                "verified" if full.stats.num_faults == 0 else "BUG FOUND",
            ]
        )
    emit_table(
        "e13_sync_algorithms",
        "E13: classic shared-variable algorithms (the §1 motivation)",
        ["algorithm", "full", "reduced", "faults", "deadlocks", "verdict"],
        rows,
    )
    benchmark(lambda: explore(peterson(), "stubborn", coarsen=True, sleep=True))
