"""E9 — Example 15 / Figure 8: further parallelization of calls.

Paper claim: with the Figure 2 assignments replaced by calls f1..f4,
the analysis finds the dependence pairs (s1, s4) and (s2, s3) — and
only those — enabling further parallelization; the [SS88] machinery
"can be easily extended to procedure calls".
"""

from _tables import emit_table

from repro.analyses.conflictgraph import conflict_graph
from repro.analyses.parallelize import further_parallelize
from repro.explore import explore
from repro.programs import paper


def test_e9_parallelize_tables(benchmark):
    prog = paper.example15_calls()
    result = explore(prog, "full")
    sched = benchmark(lambda: further_parallelize(prog, result))

    calls = sorted(l for seg in sched.segments.labels for l in seg)
    rows = []
    for i, a in enumerate(calls):
        for b in calls[i + 1 :]:
            pair = frozenset((a, b))
            rows.append(
                [
                    f"({a}, {b})",
                    "DEPENDENT" if pair in sched.dependent_pairs else "independent",
                ]
            )
    emit_table(
        "e09_example15_pairs",
        "E9a: Example 15 call-pair dependences (paper: (s1,s4) and (s2,s3))",
        ["pair", "verdict"],
        rows,
    )
    assert sched.dependent_pairs == {
        frozenset(("s1", "s4")),
        frozenset(("s2", "s3")),
    }

    emit_table(
        "e09_example15_schedule",
        "E9b: further-parallelized schedule",
        ["step", "parallel calls"],
        [[i, " || ".join(layer)] for i, layer in enumerate(sched.layers)],
    )
    assert sched.width == 2

    cg = conflict_graph(prog, result)
    emit_table(
        "e09_example15_delays",
        "E9c: [SS88] delay insertion at call granularity",
        ["delay edge (enforce order)"],
        [[f"{a} -> {b}"] for a, b in cg.minimal_delays()],
    )
    assert cg.minimal_delays() == [("s1", "s2"), ("s3", "s4")]
