"""E2 — Figure 5: locality-driven state-space reduction.

Paper claim: exploiting locality shrinks the configuration space of the
mostly-local two-thread program dramatically (the paper's Figure 5(b)
draws 13 configurations) "while producing exactly the same set of
result-configurations".
"""

from _tables import emit_table

from repro.explore import explore
from repro.programs import paper


def test_e2_fig5_reduction_table(benchmark):
    prog = paper.fig5_locality()

    full = explore(prog, "full")
    stub = explore(prog, "stubborn")
    coarse = explore(prog, "full", coarsen=True)
    both = benchmark(lambda: explore(prog, "stubborn", coarsen=True))

    rows = []
    for name, r in [
        ("full interleaving", full),
        ("stubborn", stub),
        ("coarsen", coarse),
        ("stubborn+coarsen", both),
    ]:
        rows.append(
            [
                name,
                r.stats.num_configs,
                r.stats.num_edges,
                len(r.final_stores()),
                "yes" if r.final_stores() == full.final_stores() else "NO",
            ]
        )
    emit_table(
        "e02_fig5_stubborn",
        "E2: Figure 5 configuration counts (paper fig 5(b): 13 configs)",
        ["policy", "configs", "edges", "results", "same results"],
        rows,
    )
    assert both.final_stores() == full.final_stores()
    assert both.stats.num_configs <= 13
