"""CI perf gate for the work-stealing parallel backend.

Times philosophers(6) under ``stubborn+coarsen`` serially and at
``--jobs 2`` (best of five, wall-clock).  The pool has a fixed startup
cost — fork, shared-memory segments, queues — that dominates a
sub-second workload, so the gate first measures that floor on a trivial
program (mutex_counter at jobs=2 finishes in a handful of expansions)
and judges the *marginal* cost of the real workload:

    net = parallel_wall - spawn_floor

* multi-core host (the interesting case): two workers must beat — or at
  worst match — the serial driver, ``net <= serial * 1.15`` (the pad
  absorbs shared-runner noise);
* single core: a speedup is physically impossible, so the gate bounds
  overhead instead, ``net <= serial * 2.0``.  The digest-first
  interconnect brought the work-stealing backend to ~1.4-1.9x net on
  one contended core, so this catches a gross regression (a backend
  change that doubles per-task messaging) while tolerating noisy
  containers.

The gate also bounds the interconnect itself: the parallel run's
``msg_bytes / configs`` must stay under ``MSG_BYTES_PER_CONFIG``.
Byte volume is hardware-independent — unlike wall-clock it cannot be
excused by a slow runner — and it is the first thing to bloat when a
transport change stops deduplicating components or starts re-shipping
digests.  The digest-first ledger measures ~100 B/config on
philosophers(6) @j2; the 122 bound is half the 244 B/config the
whole-config encoding cost before it.

Both runs must also explore the identical graph — a perf gate that
passes by exploring less is lying.

Exit status 0 = pass, 1 = fail; prints the measurements either way.
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.explore import ExploreOptions, explore  # noqa: E402
from repro.programs.corpus import CORPUS  # noqa: E402
from repro.programs.philosophers import philosophers  # noqa: E402

REPS = 5
MULTI_CORE_BOUND = 1.15
SINGLE_CORE_BOUND = 2.0
MSG_BYTES_PER_CONFIG = 122


def _best(program, opts) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(REPS):
        t0 = time.perf_counter()
        result = explore(program, options=opts)
        best = min(best, time.perf_counter() - t0)
    return best, result


def main() -> int:
    cpus = os.cpu_count() or 1
    spawn_floor, _ = _best(
        CORPUS["mutex_counter"](),
        ExploreOptions(policy="stubborn", backend="parallel", jobs=2),
    )
    program = philosophers(6)
    serial_wall, ser = _best(
        program, ExploreOptions(policy="stubborn", coarsen=True)
    )
    parallel_wall, par = _best(
        program,
        ExploreOptions(
            policy="stubborn", coarsen=True, backend="parallel", jobs=2
        ),
    )
    net = max(parallel_wall - spawn_floor, 0.0)
    ratio = net / serial_wall if serial_wall else float("inf")
    bound = MULTI_CORE_BOUND if cpus >= 2 else SINGLE_CORE_BOUND
    print(
        f"philosophers(6) stubborn+coarsen on {cpus} cpu(s): "
        f"serial={serial_wall:.3f}s jobs=2={parallel_wall:.3f}s "
        f"(spawn floor {spawn_floor:.3f}s) net={net:.3f}s "
        f"net_ratio={ratio:.3f} bound={bound:.2f}"
    )

    if (par.stats.num_configs, par.stats.num_edges) != (
        ser.stats.num_configs,
        ser.stats.num_edges,
    ):
        print(
            f"FAIL: graphs differ "
            f"({par.stats.num_configs}/{par.stats.num_edges} vs "
            f"{ser.stats.num_configs}/{ser.stats.num_edges})"
        )
        return 1
    if ratio > bound:
        kind = "slower than serial" if cpus >= 2 else "overhead bound blown"
        print(f"FAIL: {kind} (net ratio {ratio:.3f} > {bound:.2f})")
        return 1
    per_config = par.stats.msg_bytes / par.stats.num_configs
    print(
        f"interconnect: {par.stats.msg_bytes} B over "
        f"{par.stats.num_configs} configs = {per_config:.1f} B/config "
        f"(bound {MSG_BYTES_PER_CONFIG}), "
        f"suppressed={par.stats.cand_suppressed}"
    )
    if per_config > MSG_BYTES_PER_CONFIG:
        print(
            f"FAIL: interconnect regression "
            f"({per_config:.1f} B/config > {MSG_BYTES_PER_CONFIG})"
        )
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
