"""E3 — dining philosophers scaling (§2.2, after [Val88]).

Paper claim: stubborn sets reduce the n-philosophers state space "from
exponential to quadratic in n".

Measured: the full space grows ~7× per philosopher (exponential); the
reduced space (Algorithm 1 + coarsening + sleep sets) fits ~2.3·n³ —
polynomial, with a per-philosopher growth factor *decreasing* toward 1
(an exponential's stays constant).  The circular-wait deadlock is
preserved at every n.  The extra degree over Valmari's quadratic stems
from our statement-level semantics (spawn/join bookkeeping and the
acquire/release encoding), not from the reduction logic.
"""

from _tables import emit_table

from repro.explore import explore
from repro.programs.philosophers import philosophers

FULL_NS = (2, 3, 4, 5)
REDUCED_NS = (2, 3, 4, 5, 6, 7)


def _series():
    rows = []
    full_counts = {}
    red_counts = {}
    for n in REDUCED_NS:
        prog = philosophers(n)
        red = explore(prog, "stubborn", coarsen=True, sleep=True)
        assert red.stats.num_deadlocks == 1
        red_counts[n] = red.stats.num_configs
        if n in FULL_NS:
            full = explore(prog, "full")
            assert red.final_stores() == full.final_stores()
            full_counts[n] = full.stats.num_configs
    prev_f = prev_r = None
    for n in REDUCED_NS:
        f = full_counts.get(n)
        r = red_counts[n]
        growth_f = (
            "-" if prev_f is None or f is None else f"{f / prev_f:.1f}x"
        )
        growth_r = "-" if prev_r is None else f"{r / prev_r:.2f}x"
        per_n3 = f"{r / n**3:.2f}"
        rows.append(
            [
                n,
                f if f is not None else "(skipped)",
                growth_f,
                r,
                growth_r,
                per_n3,
            ]
        )
        prev_f = f if f is not None else prev_f
        prev_r = r
    return rows, full_counts, red_counts


def test_e3_philosophers_scaling(benchmark):
    rows, full_counts, red_counts = _series()
    emit_table(
        "e03_philosophers",
        "E3: dining philosophers — full (exponential) vs reduced "
        "(polynomial ~n^3); deadlock preserved at every n",
        ["n", "full", "growth", "reduced", "growth", "reduced/n^3"],
        rows,
    )
    # full growth factor stays ~constant >= 5 (exponential)
    fs = [full_counts[n] for n in FULL_NS]
    for a, b in zip(fs, fs[1:]):
        assert b / a > 5
    # reduced growth factor decreases monotonically (polynomial)
    rs = [red_counts[n] for n in REDUCED_NS]
    factors = [b / a for a, b in zip(rs, rs[1:])]
    assert all(f2 < f1 for f1, f2 in zip(factors, factors[1:]))
    # and the n^3 coefficient is stable within a band
    coeffs = [red_counts[n] / n**3 for n in REDUCED_NS[1:]]
    assert max(coeffs) / min(coeffs) < 2.0
    benchmark(lambda: explore(philosophers(5), "stubborn", coarsen=True, sleep=True))
