"""E1 — Figure 2 / Example 1 ([SS88]).

Paper claim: under sequential consistency exactly three of the four
value pairs for (x, y) are legal; a sequential compiler's reordering of
segment 1's "independent" statements admits the fourth.  The bench
regenerates the outcome sets and times the exploration.
"""

from _tables import emit_table

from repro.explore import explore
from repro.programs import paper


def test_e1_outcome_table(benchmark):
    prog = paper.fig2_shasha_snir()
    reordered = paper.fig2_reordered()

    result = benchmark(lambda: explore(prog, "full"))
    r_re = explore(reordered, "full")

    sc = sorted(result.global_values("x", "y"))
    re = sorted(r_re.global_values("x", "y"))
    rows = []
    for pair in [(0, 0), (0, 1), (1, 0), (1, 1)]:
        rows.append(
            [
                f"(x,y)={pair}",
                "legal" if pair in sc else "IMPOSSIBLE",
                "legal" if pair in re else "impossible",
            ]
        )
    emit_table(
        "e01_fig2_outcomes",
        "E1: final (x,y) under SC vs after unsafe reordering",
        ["outcome", "original (SC)", "segment-1 reordered"],
        rows,
    )
    assert sc == [(0, 1), (1, 0), (1, 1)]
    assert (0, 0) in re
