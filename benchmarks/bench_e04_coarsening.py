"""E4 — virtual coarsening (Observation 5).

Paper claim: fusing atomic actions so each block holds at most one
critical reference shrinks the explored space while preserving result
configurations.  Swept over thread-local run length: the more local
work between shared accesses, the bigger the win.
"""

from _tables import emit_table

from repro.explore import explore
from repro.programs.synthetic import local_heavy


def test_e4_coarsening_sweep(benchmark):
    rows = []
    for steps in (1, 2, 4, 6, 8):
        prog = local_heavy(2, steps)
        full = explore(prog, "full")
        co = explore(prog, "full", coarsen=True)
        assert co.final_stores() == full.final_stores()
        rows.append(
            [
                steps,
                full.stats.num_configs,
                co.stats.num_configs,
                f"{full.stats.num_configs / co.stats.num_configs:.1f}x",
                max(len(e.actions) for e in co.graph.iter_edges()),
            ]
        )
    emit_table(
        "e04_coarsening",
        "E4: virtual coarsening vs local run length (2 threads)",
        ["local steps", "full", "coarsened", "reduction", "max block"],
        rows,
    )
    ratios = [float(r[3].rstrip("x")) for r in rows]
    assert ratios[-1] > ratios[0]  # reduction grows with locality
    benchmark(lambda: explore(local_heavy(2, 6), "full", coarsen=True))
