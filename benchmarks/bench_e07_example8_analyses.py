"""E7 — Example 8: side effects and dependences of the pointer program.

Paper claim (§5.1/§5.2 via Example 8): the analysis attributes accesses
to heap objects by allocation site; ``*x = *y`` carries a flow
dependence from ``*y = 10`` through object b1, across threads.
"""

from _tables import emit_table

from repro.analyses.dependence import dependences
from repro.analyses.sideeffects import side_effects
from repro.explore import ExploreOptions, explore
from repro.programs import paper
from repro.semantics import StepOptions


def _analysis_result(prog):
    return explore(
        prog,
        options=ExploreOptions(
            policy="full", step=StepOptions(gc=False, track_procstrings=True)
        ),
    )


def test_e7_example8_tables(benchmark):
    prog = paper.example8_pointers()
    result = benchmark(lambda: _analysis_result(prog))

    eff = side_effects(prog, result)
    rows = []
    for pid in sorted(eff.by_thread):
        e = eff.by_thread[pid]
        rows.append(
            [
                f"thread {pid}",
                ", ".join(sorted(map(str, e.ref))) or "-",
                ", ".join(sorted(map(str, e.mod))) or "-",
            ]
        )
    emit_table(
        "e07_example8_effects",
        "E7a: Example 8 per-thread mod/ref (b1 = site s1, b2 = site s3)",
        ["thread", "ref", "mod"],
        rows,
    )

    deps = dependences(prog, result)
    cross = sorted(
        (d for d in deps.deps if d.cross_thread),
        key=lambda d: (d.src, d.dst, d.kind),
    )
    emit_table(
        "e07_example8_deps",
        "E7b: Example 8 cross-thread dependences",
        ["src", "kind", "dst", "location"],
        [[d.src, d.kind, d.dst, str(d.loc)] for d in cross],
    )
    flows = {(d.src, d.dst, d.loc) for d in deps.deps if d.kind == "flow"}
    assert ("s2", "s4", ("site", "s1")) in flows
    # b2 is never referenced by thread 1
    t1 = eff.by_thread[(0, 0)]
    assert ("site", "s3") not in (t1.ref | t1.mod)
