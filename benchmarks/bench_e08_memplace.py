"""E8 — §5.3/§7: object lifetimes drive memory placement.

Paper claim: "b1 should be allocated at a level of memory visible to
both processors (since b1 is accessed by both threads) while b2 can be
allocated locally"; objects that never escape their creating activation
go on that function's deallocation list [Har89].
"""

from _tables import emit_table

from repro.analyses.lifetime import lifetimes
from repro.analyses.memplace import placements
from repro.explore import ExploreOptions, explore
from repro.programs import paper
from repro.semantics import StepOptions


def _analysis_result(prog):
    return explore(
        prog,
        options=ExploreOptions(
            policy="full", step=StepOptions(gc=False, track_procstrings=True)
        ),
    )


def test_e8_placement_tables(benchmark):
    prog = paper.example8_pointers()
    result = _analysis_result(prog)
    lts = benchmark(lambda: lifetimes(prog, result))
    place = placements(lts)
    rows = [
        [
            p.site,
            "b1" if p.site == "s1" else "b2",
            "thread-local" if p.thread_local else "SHARED",
            str(p.level_pid),
            "yes" if p.stack_allocatable else "no",
        ]
        for p in place.values()
    ]
    emit_table(
        "e08_memplace",
        "E8a: Example 8 memory placement (paper: b1 shared, b2 local)",
        ["site", "object", "sharing", "memory level (thread)", "stack-allocatable"],
        rows,
    )
    assert not place["s1"].thread_local
    assert place["s3"].thread_local

    # deallocation lists on the richer extents program
    prog2 = paper.lifetime_extents()
    lts2 = lifetimes(prog2, _analysis_result(prog2))
    dealloc = lts2.dealloc_lists()
    emit_table(
        "e08_dealloc",
        "E8b: deallocation lists (free at function exit, [Har89])",
        ["function", "sites freed at exit"],
        [[f, ", ".join(sites)] for f, sites in sorted(dealloc.items())],
    )
    assert "m1" in dealloc.get("local_use", [])
    assert "m2" not in dealloc.get("escaper", [])
