"""E11 — §2.2/§2.3: the power of the method vs sharing density.

Paper claim: "the cost of the state space generation can be reduced
significantly for parallel programs where accesses to shared variables
do not occur frequently, and only a small set of variables is shared".
Swept: every k-th statement touches a shared cell.
"""

from _tables import emit_table

from repro.explore import explore
from repro.programs.synthetic import sharing_sweep


def test_e11_sharing_density_sweep(benchmark):
    rows = []
    ratios = []
    for shared_every in (1, 2, 3, 6):
        prog = sharing_sweep(2, 6, shared_every)
        full = explore(prog, "full")
        red = explore(prog, "stubborn", coarsen=True)
        assert red.final_stores() == full.final_stores()
        ratio = full.stats.num_configs / red.stats.num_configs
        ratios.append(ratio)
        rows.append(
            [
                f"1/{shared_every}",
                full.stats.num_configs,
                red.stats.num_configs,
                f"{ratio:.1f}x",
                f"{red.stats.stubborn.mean_reduction:.2f}"
                if red.stats.stubborn
                else "-",
            ]
        )
    emit_table(
        "e11_sharing_sweep",
        "E11: reduction vs shared-access density (2 threads x 6 stmts)",
        ["shared density", "full", "stubborn+coarsen", "reduction", "mean chosen/enabled"],
        rows,
    )
    assert ratios[-1] > ratios[0]  # sparser sharing → stronger reduction
    benchmark(lambda: explore(sharing_sweep(2, 6, 3), "stubborn", coarsen=True))
