"""E5 — configuration folding into Taylor concurrency states (§6.1).

Paper claim (Figure 3): configurations that differ only in data — the
"dangling links" — fold into one abstract configuration; the folded
space equals Taylor's concurrency states [Tay83].
"""

from _tables import emit_table

from repro.abstraction import concurrency_states, taylor_explore
from repro.explore import explore
from repro.programs import paper
from repro.programs.corpus import CORPUS

PROGRAMS = [
    "fig3_folding",
    "fig2_shasha_snir",
    "racy_counter",
    "example8_pointers",
    "intro_busywait",
]


def test_e5_taylor_fold_table(benchmark):
    rows = []
    for name in PROGRAMS:
        prog = CORPUS[name]()
        concrete = explore(prog, "full")
        quotient = concurrency_states(concrete.graph)
        folded = taylor_explore(prog)
        rows.append(
            [
                name,
                concrete.stats.num_configs,
                len(quotient),
                folded.stats.num_states,
                f"{concrete.stats.num_configs / len(quotient):.2f}x",
            ]
        )
    emit_table(
        "e05_taylor_folding",
        "E5: concrete configurations vs Taylor concurrency states",
        ["program", "concrete", "quotient", "folded explore", "fold factor"],
        rows,
    )
    # on fig3 (the paper's figure) folding merges the data variants and
    # the directly-folded exploration finds exactly the quotient
    fig3 = rows[0]
    assert fig3[2] < fig3[1]
    assert fig3[3] == fig3[2]
    benchmark(lambda: taylor_explore(paper.fig3_folding()))
