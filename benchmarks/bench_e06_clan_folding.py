"""E6 — clan folding (§6.2, McDowell's clans).

Paper claim: processes spawned from identical cobegin branches need not
be distinguished, nor counted beyond "one or many" — the folded space
becomes independent of the number of identical tasks, while the full
space grows exponentially.
"""

from _tables import emit_table

from repro.abstraction import clan_explore
from repro.explore import ExploreOptions, explore
from repro.programs.synthetic import identical_tasks

NS = (1, 2, 3, 4, 5, 6)
CAP = 150_000


def test_e6_clan_fold_table(benchmark):
    rows = []
    clan_counts = []
    for n in NS:
        prog = identical_tasks(n, steps=1)
        full = explore(prog, options=ExploreOptions(policy="full", max_configs=CAP))
        folded = clan_explore(prog)
        clan_counts.append(folded.stats.num_states)
        full_str = (
            f">{CAP}" if full.stats.truncated else str(full.stats.num_configs)
        )
        rows.append([n, full_str, folded.stats.num_states])
    emit_table(
        "e06_clan_folding",
        "E6: n identical tasks — full space vs clan-folded space",
        ["n tasks", "full configs", "clan-folded states"],
        rows,
    )
    # independence of n (for n >= 2 the counting abstraction saturates)
    assert len(set(clan_counts[1:])) == 1
    benchmark(lambda: clan_explore(identical_tasks(4, steps=1)))
