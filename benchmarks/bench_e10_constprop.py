"""E10 — the introduction's busy-wait vs constant propagation.

Paper claim: a sequential optimizer treats the spin flag as loop-
invariant and hoists the load — "the intended busy-waiting never
succeeds"; the interference-aware analysis must refuse, while still
proving the *useful* constant (x == 42 after the wait).
"""

from _tables import emit_table

from repro.analyses.constprop import constants_at, licm_report
from repro.programs import paper


def test_e10_constprop_tables(benchmark):
    prog = paper.intro_busywait_loop()
    cp = benchmark(lambda: constants_at(prog))

    licm = [l for l in licm_report(prog) if l.seq_invariant]
    rows = []
    for l in licm:
        for g in l.seq_invariant:
            rows.append(
                [
                    f"loop {l.loop_label}",
                    g,
                    "invariant (would hoist)",
                    "UNSAFE - concurrent write" if g in l.unsafe else "safe",
                ]
            )
    emit_table(
        "e10_licm",
        "E10a: loop-invariant load classification (busy-wait flag)",
        ["loop", "global", "sequential analysis", "interference-aware"],
        rows,
    )
    assert licm and licm[0].unsafe == ("s",)

    points = ["l1", "r1"]
    names = ["s", "x", "r"]
    rows = []
    for label in points:
        consts = cp.at.get(label, {})
        rows.append([label] + [str(consts.get(n, "⊤ (not constant)")) for n in names])
    emit_table(
        "e10_constants",
        "E10b: interference-aware constants at program points",
        ["point"] + names,
        rows,
    )
    assert cp.constant("l1", "s") is None
    assert cp.constant("r1", "x") == 42
