"""E12 — §4/§6: abstract exploration terminates and covers.

Paper claim: the abstract-interpretation layer makes analysis of
programs with unbounded concrete state spaces feasible — the folded
abstract space is finite (widening) and soundly covers every concrete
configuration.
"""

from _tables import emit_table

from repro.absdomain import (
    AbsValueDomain,
    FlatConstDomain,
    IntervalDomain,
    KSetDomain,
    ParityDomain,
    ProductDomain,
    SignDomain,
)
from repro.abstraction import taylor_explore
from repro.explore import ExploreOptions, explore
from repro.lang import parse_program

UNBOUNDED = """
var g = 0; var flag = 0;
func main() {
    cobegin
    { while (flag == 0) { g = g + 1; } }
    { flag = 1; }
}
"""

DOMS = [
    ("const", lambda: FlatConstDomain()),
    ("sign", lambda: SignDomain()),
    ("interval", lambda: IntervalDomain()),
    ("parity", lambda: ParityDomain()),
    ("kset4", lambda: KSetDomain(4)),
    ("interval×parity", lambda: ProductDomain(IntervalDomain(), ParityDomain())),
]


def test_e12_abstract_soundness_table(benchmark):
    prog = parse_program(UNBOUNDED)
    concrete = explore(prog, options=ExploreOptions(policy="full", max_configs=400))
    assert concrete.stats.truncated  # concrete space unbounded

    rows = []
    for name, mk in DOMS:
        folded = taylor_explore(prog, AbsValueDomain(mk()))
        covered = sum(
            1
            for cfg in concrete.graph.configs
            if cfg.fault is None and folded.covers_config(cfg)
        )
        total = sum(1 for cfg in concrete.graph.configs if cfg.fault is None)
        rows.append(
            [
                name,
                folded.stats.num_states,
                folded.stats.widenings,
                f"{covered}/{total}",
            ]
        )
        assert covered == total
    emit_table(
        "e12_abstract_soundness",
        "E12: abstract exploration of an unbounded-counter program "
        "(concrete truncated at 400 configs)",
        ["domain", "folded states", "widenings", "concrete configs covered"],
        rows,
    )
    benchmark(lambda: taylor_explore(prog, AbsValueDomain(IntervalDomain())))
