"""Ablation benches for the design choices DESIGN.md calls out.

A1 — stubborn-set *granularity*: Algorithm 1 works on individual
instructions (D1 control chains for future elements); the simpler
process-granularity closure must pull whole-process futures.  The
paper's improvement over naive Overman is exactly this distinction.

A2 — *points-to precision* in the static access sets: without it every
dereference statically conflicts with every allocation site, and the
reduction on pointer-disjoint threads collapses.

A3 — configuration *garbage collection*: dropping unreachable heap
objects merges configurations that differ only in dead data.
"""

from _tables import emit_table

from repro.explore import ExploreOptions, explore
from repro.programs.philosophers import philosophers
from repro.programs.synthetic import pointer_heavy, sharing_sweep
from repro.semantics import StepOptions


def test_a1_stubborn_granularity(benchmark):
    rows = []
    for name, prog in [
        ("philosophers(4)", philosophers(4)),
        ("sharing 1/3", sharing_sweep(2, 6, 3)),
        ("pointer_heavy(2,2)", pointer_heavy(2, 2)),
    ]:
        full = explore(prog, "full")
        alg1 = explore(prog, "stubborn")
        proc = explore(prog, "stubborn-proc")
        assert alg1.final_stores() == full.final_stores() == proc.final_stores()
        rows.append(
            [
                name,
                full.stats.num_configs,
                alg1.stats.num_configs,
                proc.stats.num_configs,
            ]
        )
    emit_table(
        "a01_granularity",
        "A1: stubborn granularity — Algorithm 1 (instructions) vs whole-process closure",
        ["program", "full", "algorithm 1", "process-level"],
        rows,
    )
    benchmark(lambda: explore(sharing_sweep(2, 6, 3), "stubborn"))


def test_a2_pointsto_precision(benchmark):
    rows = []
    for threads, steps in [(2, 2), (2, 3), (3, 2)]:
        prog = pointer_heavy(threads, steps)
        full = explore(prog, "full")
        precise = explore(
            prog, options=ExploreOptions(policy="stubborn", coarsen=True)
        )
        coarse = explore(
            prog,
            options=ExploreOptions(
                policy="stubborn", coarsen=True, coarse_derefs=True
            ),
        )
        assert precise.final_stores() == full.final_stores()
        assert coarse.final_stores() == full.final_stores()
        rows.append(
            [
                f"{threads}x{steps}",
                full.stats.num_configs,
                precise.stats.num_configs,
                coarse.stats.num_configs,
            ]
        )
    emit_table(
        "a02_pointsto",
        "A2: points-to precision in static access sets (pointer-disjoint threads)",
        ["threads x steps", "full", "with points-to", "coarse derefs"],
        rows,
    )
    # precision must strictly pay off on at least the larger configs
    assert any(int(r[2]) < int(r[3]) for r in rows)
    benchmark(
        lambda: explore(
            pointer_heavy(2, 3), options=ExploreOptions(policy="stubborn", coarsen=True)
        )
    )


def test_a3_gc_ablation(benchmark):
    src_prog = pointer_heavy(2, 2)
    rows = []
    for gc in (True, False):
        r = explore(
            src_prog,
            options=ExploreOptions(policy="full", step=StepOptions(gc=gc)),
        )
        rows.append(["on" if gc else "off", r.stats.num_configs, r.stats.num_edges])
    emit_table(
        "a03_gc",
        "A3: configuration GC (dead heap objects merged away)",
        ["gc", "configs", "edges"],
        rows,
    )
    assert rows[0][1] <= rows[1][1]
    benchmark(
        lambda: explore(
            src_prog, options=ExploreOptions(policy="full", step=StepOptions(gc=True))
        )
    )
